// Tests for src/net: channel model, frame protocol, and the client/server
// pipeline of Figure 2.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/error_metrics.h"
#include "harness/fault_injection.h"
#include "lidar/scene_generator.h"
#include "net/channel.h"
#include "net/client.h"
#include "net/frame_protocol.h"
#include "net/frame_store.h"
#include "net/pipeline.h"
#include "net/server.h"
#include "net/session.h"
#include "net/tcp_transport.h"
#include "obs/metrics.h"

namespace dbgc {
namespace {

TEST(ChannelTest, TransferTimeIsLatencyPlusSerialization) {
  const SimulatedChannel ch(8.0, 0.1);  // 8 Mbps, 100 ms.
  // 1 MB = 8 Mbit -> 1 second on the wire + latency.
  EXPECT_NEAR(ch.TransferSeconds(1000000), 1.1, 1e-9);
}

TEST(ChannelTest, SustainabilityCheck) {
  const SimulatedChannel mobile = SimulatedChannel::Mobile4G();
  // A raw HDL-64E stream (9.6 Mbit/frame at 10 fps = 96 Mbps) exceeds 4G.
  EXPECT_FALSE(mobile.CanSustain(1200000, 10.0));
  // A DBGC-compressed stream (~0.6 Mbit/frame -> 6 Mbps) fits.
  EXPECT_TRUE(mobile.CanSustain(75000, 10.0));
  // Both fit 100BASE-TX.
  EXPECT_TRUE(SimulatedChannel::Ethernet100().CanSustain(1200000, 10.0));
}

TEST(FrameProtocolTest, RoundTrip) {
  Frame frame;
  frame.frame_id = 1234;
  for (int i = 0; i < 1000; ++i) {
    frame.payload.AppendByte(static_cast<uint8_t>(i * 7));
  }
  const ByteBuffer wire = FrameProtocol::Serialize(frame);
  EXPECT_EQ(wire.size(), FrameProtocol::kHeaderBytes + 1000);
  auto parsed = FrameProtocol::Parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().frame_id, 1234u);
  EXPECT_EQ(parsed.value().payload, frame.payload);
}

TEST(FrameProtocolTest, ChecksumDetectsCorruption) {
  Frame frame;
  frame.frame_id = 1;
  for (int i = 0; i < 64; ++i) frame.payload.AppendByte(7);
  ByteBuffer wire = FrameProtocol::Serialize(frame);
  wire.mutable_bytes()[FrameProtocol::kHeaderBytes + 10] ^= 0xFF;
  EXPECT_FALSE(FrameProtocol::Parse(wire).ok());
}

TEST(FrameProtocolTest, BadMagicAndTruncation) {
  Frame frame;
  frame.frame_id = 2;
  frame.payload.AppendByte(1);
  ByteBuffer wire = FrameProtocol::Serialize(frame);
  ByteBuffer bad = wire;
  bad.mutable_bytes()[0] = 'x';
  EXPECT_FALSE(FrameProtocol::Parse(bad).ok());
  ByteBuffer truncated;
  truncated.Append(wire.data(), wire.size() - 1);
  EXPECT_FALSE(FrameProtocol::Parse(truncated).ok());
}

TEST(FrameProtocolTest, ExhaustiveTruncationSweep) {
  // Round-trip under truncation at EVERY prefix length: the parser must
  // reject all of them cleanly (header cuts, length-field cuts, payload
  // cuts) and accept only the complete frame.
  Frame frame;
  frame.frame_id = 77;
  for (int i = 0; i < 256; ++i) {
    frame.payload.AppendByte(static_cast<uint8_t>(i));
  }
  const ByteBuffer wire = FrameProtocol::Serialize(frame);
  harness::FaultInjector injector(11);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(FrameProtocol::Parse(injector.Truncate(wire, cut)).ok())
        << "truncated frame accepted at prefix length " << cut;
  }
  auto parsed = FrameProtocol::Parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().payload, frame.payload);
}

TEST(FrameProtocolTest, StructuredFaultsRejectedOrExact) {
  Frame frame;
  frame.frame_id = 78;
  for (int i = 0; i < 512; ++i) {
    frame.payload.AppendByte(static_cast<uint8_t>(i * 13));
  }
  const ByteBuffer wire = FrameProtocol::Serialize(frame);
  harness::FaultInjector injector(12);
  for (const harness::InjectedFault& fault :
       injector.AllFaults(wire, wire, 16)) {
    auto parsed = FrameProtocol::Parse(fault.stream);
    if (!parsed.ok()) continue;
    // Anything accepted must be byte-exact: the header fields and FNV
    // checksum leave no room for a silently different payload.
    EXPECT_EQ(parsed.value().payload, frame.payload)
        << "corrupted frame accepted (" << fault.description << ")";
  }
}

TEST(ClientServerTest, EndToEndPipeline) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  DbgcClient client(options);
  DbgcServer server;

  const SceneGenerator gen(SceneType::kCity);
  for (uint32_t f = 0; f < 2; ++f) {
    const PointCloud full = gen.Generate(f);
    PointCloud pc;
    for (size_t i = 0; i < full.size(); i += 8) pc.Add(full[i]);

    ClientFrameReport creport;
    auto wire = client.ProcessFrame(pc, &creport);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EXPECT_EQ(creport.frame_id, f);
    EXPECT_GT(creport.compress_seconds, 0.0);
    EXPECT_LT(creport.compressed_bytes, creport.raw_bytes);

    ServerFrameReport sreport;
    ASSERT_TRUE(server.HandleFrame(wire.value(), &sreport).ok());
    EXPECT_EQ(sreport.frame_id, f);
    EXPECT_EQ(sreport.num_points, pc.size());

    // Stored cloud is geometrically close to the capture.
    const PointCloud& stored = server.stored_clouds().at(f);
    const ErrorStats stats = NearestNeighborError(pc, stored);
    EXPECT_LE(stats.max_euclidean, 0.04);
  }
  EXPECT_EQ(server.stored_clouds().size(), 2u);
}

TEST(ClientServerTest, StoreCompressedMode) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  DbgcClient client(options);
  DbgcServer server(/*store_compressed=*/true);

  const SceneGenerator gen(SceneType::kRoad);
  const PointCloud full = gen.Generate(0);
  PointCloud pc;
  for (size_t i = 0; i < full.size(); i += 20) pc.Add(full[i]);

  ClientFrameReport creport;
  auto wire = client.ProcessFrame(pc, &creport);
  ASSERT_TRUE(wire.ok());
  ServerFrameReport sreport;
  ASSERT_TRUE(server.HandleFrame(wire.value(), &sreport).ok());
  EXPECT_TRUE(server.stored_clouds().empty());
  ASSERT_EQ(server.stored_bitstreams().size(), 1u);

  // The archived bitstream is decodable later.
  const DbgcCodec codec(options);
  auto decoded = codec.Decompress(server.stored_bitstreams().at(0));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), pc.size());
}

TEST(ClientServerTest, ArchiveReceivesBitstreams) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  DbgcClient client(options);
  MemoryFrameStore archive;
  DbgcServer server;
  server.set_archive(&archive);

  const SceneGenerator gen(SceneType::kCampus);
  const PointCloud full = gen.Generate(0);
  PointCloud pc;
  for (size_t i = 0; i < full.size(); i += 25) pc.Add(full[i]);

  ClientFrameReport creport;
  auto wire = client.ProcessFrame(pc, &creport);
  ASSERT_TRUE(wire.ok());
  ServerFrameReport sreport;
  ASSERT_TRUE(server.HandleFrame(wire.value(), &sreport).ok());
  // The archive holds the decodable bitstream alongside the live cloud.
  ASSERT_EQ(archive.List().size(), 1u);
  const DbgcCodec codec(options);
  auto archived = archive.Get(0);
  ASSERT_TRUE(archived.ok());
  auto decoded = codec.Decompress(archived.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), pc.size());
}

TEST(ClientServerTest, OverRealTcpLoopback) {
  // The full Figure 2 path over an actual socket: client compresses and
  // frames, bytes cross a loopback TCP connection, server decompresses.
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  DbgcClient client(options);
  DbgcServer server;

  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());

  const SceneGenerator gen(SceneType::kUrban);
  const PointCloud full = gen.Generate(0);
  PointCloud pc;
  for (size_t i = 0; i < full.size(); i += 20) pc.Add(full[i]);

  std::thread server_thread([&] {
    auto conn = listener.Accept();
    ASSERT_TRUE(conn.ok());
    auto wire = conn.value().ReceiveFrame();
    ASSERT_TRUE(wire.ok());
    ServerFrameReport report;
    ASSERT_TRUE(server.HandleFrame(wire.value(), &report).ok());
  });

  auto conn = TcpConnect(listener.port());
  ASSERT_TRUE(conn.ok());
  ClientFrameReport creport;
  auto wire = client.ProcessFrame(pc, &creport);
  ASSERT_TRUE(wire.ok());
  ASSERT_TRUE(conn.value().SendFrame(wire.value()).ok());
  server_thread.join();

  ASSERT_EQ(server.stored_clouds().size(), 1u);
  EXPECT_EQ(server.stored_clouds().at(0).size(), pc.size());
}

TEST(ClientServerTest, CorruptWireRejected) {
  DbgcServer server;
  ByteBuffer junk;
  for (int i = 0; i < 100; ++i) junk.AppendByte(static_cast<uint8_t>(i));
  ServerFrameReport report;
  EXPECT_FALSE(server.HandleFrame(junk, &report).ok());
}

// ---------------------------------------------------------------------------
// CompressionPipeline admission control (docs/PARALLELISM.md): the bounded
// in-flight window, TrySubmit refusal, Drain, and shared-pool configs.

PointCloud SmallFrame(uint32_t seed) {
  Rng rng(seed);
  PointCloud pc;
  for (int i = 0; i < 400; ++i) {
    pc.Add(rng.NextRange(-20, 20), rng.NextRange(-20, 20),
           rng.NextRange(-2, 2));
  }
  return pc;
}

DbgcOptions SmallFrameOptions() {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  return options;
}

TEST(PipelineBackpressureTest, TrySubmitRefusesWhenWindowFull) {
  CompressionPipeline::Config config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  CompressionPipeline pipeline(SmallFrameOptions(), config);
  EXPECT_EQ(pipeline.capacity(), 2u);

  // The window counts undelivered frames, so two accepted submissions fill
  // it deterministically regardless of how fast the worker compresses.
  EXPECT_TRUE(pipeline.TrySubmit(SmallFrame(1)));
  EXPECT_TRUE(pipeline.TrySubmit(SmallFrame(2)));
  EXPECT_FALSE(pipeline.TrySubmit(SmallFrame(3)));
  EXPECT_EQ(pipeline.submitted(), 2u);

  // Delivering one result frees one slot; the refused frame now fits.
  ASSERT_TRUE(pipeline.NextResult().ok());
  uint64_t seq = 0;
  EXPECT_TRUE(pipeline.TrySubmit(SmallFrame(3), &seq));
  EXPECT_EQ(seq, 2u);
  EXPECT_FALSE(pipeline.TrySubmit(SmallFrame(4)));

  ASSERT_TRUE(pipeline.Drain().ok());
  ASSERT_TRUE(pipeline.NextResult().ok());
  ASSERT_TRUE(pipeline.NextResult().ok());
}

TEST(PipelineBackpressureTest, SubmitBlocksUntilWindowFrees) {
  CompressionPipeline::Config config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  CompressionPipeline pipeline(SmallFrameOptions(), config);

  EXPECT_EQ(pipeline.Submit(SmallFrame(1)), 0u);
  // A second Submit must wait for the window; free it from another thread
  // after a beat. If blocking were broken this still passes, but under
  // TSan/slow schedulers an eager Submit would race NextResult's delivery
  // accounting and trip the window invariant below.
  std::thread release([&pipeline] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(pipeline.NextResult().ok());
  });
  EXPECT_EQ(pipeline.Submit(SmallFrame(2)), 1u);
  release.join();
  EXPECT_EQ(pipeline.submitted(), 2u);
  ASSERT_TRUE(pipeline.Drain().ok());
  ASSERT_TRUE(pipeline.NextResult().ok());
}

TEST(PipelineBackpressureTest, DrainFlushesWithoutConsumingResults) {
  CompressionPipeline pipeline(SmallFrameOptions(), /*num_workers=*/2);
  const DbgcCodec reference(SmallFrameOptions());
  std::vector<ByteBuffer> expected;
  for (uint32_t f = 0; f < 3; ++f) {
    const PointCloud pc = SmallFrame(f);
    auto c = reference.Compress(pc, SmallFrameOptions().q_xyz);
    ASSERT_TRUE(c.ok());
    expected.push_back(std::move(c).value());
    pipeline.Submit(pc);
  }
  ASSERT_TRUE(pipeline.Drain().ok());
  // Drain is idempotent and leaves every result deliverable, in order.
  ASSERT_TRUE(pipeline.Drain().ok());
  for (size_t f = 0; f < expected.size(); ++f) {
    auto result = pipeline.NextResult();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value(), expected[f]) << "frame " << f;
  }
}

TEST(PipelineBackpressureTest, SharedPoolServesTwoPipelines) {
  ThreadPool pool(2);
  CompressionPipeline::Config config;
  config.pool = &pool;
  config.queue_capacity = 4;
  CompressionPipeline left(SmallFrameOptions(), config);
  CompressionPipeline right(SmallFrameOptions(), config);
  const DbgcCodec reference(SmallFrameOptions());

  for (uint32_t f = 0; f < 3; ++f) {
    left.Submit(SmallFrame(f));
    right.Submit(SmallFrame(100 + f));
  }
  for (uint32_t f = 0; f < 3; ++f) {
    auto serial_l = reference.Compress(SmallFrame(f), SmallFrameOptions().q_xyz);
    auto serial_r =
        reference.Compress(SmallFrame(100 + f), SmallFrameOptions().q_xyz);
    auto got_l = left.NextResult();
    auto got_r = right.NextResult();
    ASSERT_TRUE(serial_l.ok() && serial_r.ok());
    ASSERT_TRUE(got_l.ok() && got_r.ok());
    EXPECT_EQ(got_l.value(), serial_l.value()) << "left frame " << f;
    EXPECT_EQ(got_r.value(), serial_r.value()) << "right frame " << f;
  }
}

TEST(PipelineBackpressureTest, IntraFrameParallelismKeepsBytes) {
  // max_threads_per_frame = 0 hands each frame the whole pool; the
  // bitstream contract says the bytes cannot change.
  ThreadPool pool(3);
  CompressionPipeline::Config config;
  config.pool = &pool;
  config.max_threads_per_frame = 0;
  CompressionPipeline pipeline(SmallFrameOptions(), config);
  const DbgcCodec reference(SmallFrameOptions());

  const PointCloud pc = SmallFrame(7);
  auto serial = reference.Compress(pc, SmallFrameOptions().q_xyz);
  ASSERT_TRUE(serial.ok());
  pipeline.Submit(pc);
  auto parallel = pipeline.NextResult();
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel.value(), serial.value());
}

TEST(PipelineBackpressureTest, DestructorDrainsOutstandingFrames) {
  // Dropping a pipeline with accepted-but-undelivered frames must complete
  // their compressions before tearing down (tasks capture `this`).
  ThreadPool pool(2);
  {
    CompressionPipeline::Config config;
    config.pool = &pool;
    config.queue_capacity = 4;
    CompressionPipeline pipeline(SmallFrameOptions(), config);
    for (uint32_t f = 0; f < 4; ++f) pipeline.Submit(SmallFrame(f));
  }
  // The shared pool is still healthy after the pipeline is gone.
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.ParallelFor(0, 16, 1, [&](size_t lo, size_t hi) {
                    ran.fetch_add(static_cast<int>(hi - lo));
                  })
                  .ok());
  EXPECT_EQ(ran.load(), 16);
}

// ---------------------------------------------------------------------------
// Observability accounting (docs/OBSERVABILITY.md): the pipeline/store
// metrics must agree with the components' own ground-truth accessors. The
// registry is process-global, so every assertion is on a delta against a
// snapshot taken before the component ran.

uint64_t CounterVal(const char* name) {
  return obs::MetricsRegistry::Global().CounterValue(name);
}

int64_t GaugeVal(const char* name) {
  return obs::MetricsRegistry::Global().GetGauge(name)->Value();
}

TEST(PipelineBackpressureTest, MetricsMatchGroundTruthUnderFullWindow) {
  const uint64_t submitted0 = CounterVal("pipeline_submitted_total");
  const uint64_t rejected0 = CounterVal("pipeline_rejected_total");
  const uint64_t delivered0 = CounterVal("pipeline_delivered_total");
  const int64_t inflight0 = GaugeVal("pipeline_inflight");
  const int64_t depth0 = GaugeVal("pipeline_queue_depth");

  CompressionPipeline::Config config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  CompressionPipeline pipeline(SmallFrameOptions(), config);

  // Fill the window, then get refused twice: the rejected counter and the
  // accessor count every refusal, not just the first.
  EXPECT_TRUE(pipeline.TrySubmit(SmallFrame(1)));
  EXPECT_TRUE(pipeline.TrySubmit(SmallFrame(2)));
  EXPECT_FALSE(pipeline.TrySubmit(SmallFrame(3)));
  EXPECT_FALSE(pipeline.TrySubmit(SmallFrame(4)));
  EXPECT_EQ(pipeline.rejected(), 2u);
  EXPECT_EQ(pipeline.inflight(), 2u);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(CounterVal("pipeline_submitted_total") - submitted0, 2u);
    EXPECT_EQ(CounterVal("pipeline_rejected_total") - rejected0, 2u);
    EXPECT_EQ(GaugeVal("pipeline_inflight") - inflight0, 2);
  }

  // Drain and deliver everything: the window empties and the gauges return
  // to their baseline, so repeated runs compose additively.
  ASSERT_TRUE(pipeline.Drain().ok());
  ASSERT_TRUE(pipeline.NextResult().ok());
  ASSERT_TRUE(pipeline.NextResult().ok());
  EXPECT_EQ(pipeline.inflight(), 0u);
  EXPECT_EQ(pipeline.queue_depth(), 0u);
  EXPECT_EQ(pipeline.rejected(), 2u);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(CounterVal("pipeline_delivered_total") - delivered0, 2u);
    EXPECT_EQ(GaugeVal("pipeline_inflight"), inflight0);
    EXPECT_EQ(GaugeVal("pipeline_queue_depth"), depth0);
  }
}

TEST(PipelineBackpressureTest, DestructorReleasesUndeliveredInflight) {
  const int64_t inflight0 = GaugeVal("pipeline_inflight");
  const int64_t depth0 = GaugeVal("pipeline_queue_depth");
  {
    CompressionPipeline::Config config;
    config.num_workers = 1;
    config.queue_capacity = 4;
    CompressionPipeline pipeline(SmallFrameOptions(), config);
    for (uint32_t f = 0; f < 3; ++f) pipeline.Submit(SmallFrame(f));
    ASSERT_TRUE(pipeline.Drain().ok());
    // Consume one of three; the other two die undelivered with the
    // pipeline and must not leak inflight occupancy.
    ASSERT_TRUE(pipeline.NextResult().ok());
    EXPECT_EQ(pipeline.inflight(), 2u);
  }
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(GaugeVal("pipeline_inflight"), inflight0);
    EXPECT_EQ(GaugeVal("pipeline_queue_depth"), depth0);
  }
}

// ---------------------------------------------------------------------------
// MemoryFrameStore eviction (bounded capacity) and its accounting.

ByteBuffer PayloadOfSize(size_t n) {
  ByteBuffer buf;
  for (size_t i = 0; i < n; ++i) buf.AppendByte(static_cast<uint8_t>(i));
  return buf;
}

TEST(FrameStoreTest, BoundedStoreEvictsOldestIdFirst) {
  const uint64_t puts0 = CounterVal("store_put_total");
  const uint64_t evicted0 = CounterVal("store_evicted_total");
  const uint64_t miss0 = CounterVal("store_get_miss_total");

  MemoryFrameStore store(/*capacity=*/2);
  EXPECT_EQ(store.capacity(), 2u);
  ASSERT_TRUE(store.Put(10, PayloadOfSize(8)).ok());
  ASSERT_TRUE(store.Put(11, PayloadOfSize(8)).ok());
  EXPECT_EQ(store.evicted(), 0u);
  // A third id exceeds the bound: the oldest (smallest) id goes.
  ASSERT_TRUE(store.Put(12, PayloadOfSize(8)).ok());
  EXPECT_EQ(store.evicted(), 1u);
  EXPECT_EQ(store.List(), (std::vector<uint64_t>{11, 12}));
  EXPECT_FALSE(store.Get(10).ok());
  EXPECT_TRUE(store.Get(11).ok());
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(CounterVal("store_put_total") - puts0, 3u);
    EXPECT_EQ(CounterVal("store_evicted_total") - evicted0,
              store.evicted());
    EXPECT_EQ(CounterVal("store_get_miss_total") - miss0, 1u);
  }
}

TEST(FrameStoreTest, ReplacingAResidentIdNeverEvicts) {
  const int64_t bytes0 = GaugeVal("store_resident_bytes");
  MemoryFrameStore store(/*capacity=*/2);
  ASSERT_TRUE(store.Put(1, PayloadOfSize(10)).ok());
  ASSERT_TRUE(store.Put(2, PayloadOfSize(20)).ok());
  // Replacement at full capacity: same id set, new bytes, no eviction.
  ASSERT_TRUE(store.Put(1, PayloadOfSize(50)).ok());
  EXPECT_EQ(store.evicted(), 0u);
  EXPECT_EQ(store.List(), (std::vector<uint64_t>{1, 2}));
  auto got = store.Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().size(), 50u);
  if constexpr (obs::kEnabled) {
    // Resident bytes track the replacement delta exactly: 50 + 20.
    EXPECT_EQ(GaugeVal("store_resident_bytes") - bytes0, 70);
    EXPECT_GE(GaugeVal("store_resident_frames"), 2);
  }
}

TEST(FrameStoreTest, UnboundedDefaultNeverEvicts) {
  MemoryFrameStore store;  // capacity 0 = unbounded.
  for (uint64_t id = 0; id < 64; ++id) {
    ASSERT_TRUE(store.Put(id, PayloadOfSize(4)).ok());
  }
  EXPECT_EQ(store.evicted(), 0u);
  EXPECT_EQ(store.List().size(), 64u);
}

TEST(FrameStoreTest, LifecycleReleasesResidentGauges) {
  const int64_t frames0 = GaugeVal("store_resident_frames");
  const int64_t bytes0 = GaugeVal("store_resident_bytes");
  {
    MemoryFrameStore store(/*capacity=*/3);
    ASSERT_TRUE(store.Put(1, PayloadOfSize(16)).ok());
    ASSERT_TRUE(store.Put(2, PayloadOfSize(16)).ok());
    if constexpr (obs::kEnabled) {
      EXPECT_EQ(GaugeVal("store_resident_frames") - frames0, 2);
      EXPECT_EQ(GaugeVal("store_resident_bytes") - bytes0, 32);
    }
    // Remove drops one entry's share; eviction and destruction the rest.
    ASSERT_TRUE(store.Remove(1).ok());
    if constexpr (obs::kEnabled) {
      EXPECT_EQ(GaugeVal("store_resident_frames") - frames0, 1);
      EXPECT_EQ(GaugeVal("store_resident_bytes") - bytes0, 16);
    }
  }
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(GaugeVal("store_resident_frames"), frames0);
    EXPECT_EQ(GaugeVal("store_resident_bytes"), bytes0);
  }
}

// ---------------------------------------------------------------------------
// Concurrent store access. The assertions here are liveness and accounting;
// the locking itself is checked by ThreadSanitizer (scripts/check.sh runs
// this suite under -fsanitize=thread) and statically by dbgc_lint R8/R9 and
// the clang thread-safety gate.

TEST(FrameStoreConcurrency, ParallelPutGetEvictStaysConsistent) {
  constexpr uint64_t kIdSpace = 32;
  constexpr size_t kOps = 512;
  MemoryFrameStore store(/*capacity=*/8);
  ThreadPool pool(4);
  std::atomic<uint64_t> hits{0};
  ASSERT_TRUE(pool.ParallelFor(0, kOps, 1, [&](size_t lo, size_t hi) {
                    for (size_t i = lo; i < hi; ++i) {
                      const uint64_t id = i % kIdSpace;
                      ASSERT_TRUE(store.Put(id, PayloadOfSize(1 + i % 64)).ok());
                      auto got = store.Get((id + 7) % kIdSpace);
                      if (got.ok()) {
                        EXPECT_GE(got.value().size(), 1u);
                        hits.fetch_add(1);
                      }
                      if (i % 16 == 0) (void)store.Remove((id + 3) % kIdSpace);
                      EXPECT_LE(store.List().size(), 8u);
                    }
                  })
                  .ok());
  // Every surviving id is readable, occupancy respects the bound, and the
  // eviction counter accounts for the overflow traffic.
  const std::vector<uint64_t> ids = store.List();
  EXPECT_LE(ids.size(), 8u);
  for (const uint64_t id : ids) EXPECT_TRUE(store.Get(id).ok());
  EXPECT_GT(store.evicted(), 0u);
  EXPECT_GT(hits.load(), 0u);
}

// ---------------------------------------------------------------------------
// Ack wire format: the server's answer carrying verdict + degrade level.

TEST(AckProtocolTest, RoundTripAllVerdictsAndLevels) {
  for (uint8_t v = 0; v <= 4; ++v) {
    for (uint8_t l = 0; l <= 2; ++l) {
      FrameAck ack;
      ack.frame_id = 0x0123456789abcdefULL + v * 31 + l;
      ack.verdict = static_cast<AdmitVerdict>(v);
      ack.degrade = static_cast<DegradeLevel>(l);
      const ByteBuffer wire = FrameProtocol::SerializeAck(ack);
      EXPECT_EQ(wire.size(), FrameProtocol::kAckBytes);
      auto parsed = FrameProtocol::ParseAck(wire);
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(parsed.value().frame_id, ack.frame_id);
      EXPECT_EQ(parsed.value().verdict, ack.verdict);
      EXPECT_EQ(parsed.value().degrade, ack.degrade);
    }
  }
}

TEST(AckProtocolTest, CorruptionAndTruncationRejected) {
  FrameAck ack;
  ack.frame_id = 42;
  ack.verdict = AdmitVerdict::kRejectedSessionShare;
  ack.degrade = DegradeLevel::kCoarserQuant;
  const ByteBuffer wire = FrameProtocol::SerializeAck(ack);
  // Every single-byte flip is caught (magic, fields, or checksum).
  for (size_t i = 0; i < wire.size(); ++i) {
    ByteBuffer bad = wire;
    bad.mutable_bytes()[i] ^= 0x5a;
    EXPECT_FALSE(FrameProtocol::ParseAck(bad).ok()) << "byte " << i;
  }
  // Every truncation is caught.
  for (size_t n = 0; n < wire.size(); ++n) {
    ByteBuffer bad;
    for (size_t i = 0; i < n; ++i) bad.AppendByte(wire.bytes()[i]);
    EXPECT_FALSE(FrameProtocol::ParseAck(bad).ok()) << "length " << n;
  }
}

TEST(AckProtocolTest, OutOfRangeEnumBytesRejected) {
  // A well-checksummed ack whose verdict/level byte is outside the enum is
  // still refused: future wire values must not alias into today's enums.
  FrameAck ack;
  ack.frame_id = 7;
  ack.verdict = static_cast<AdmitVerdict>(9);
  const ByteBuffer bad_verdict = FrameProtocol::SerializeAck(ack);
  EXPECT_FALSE(FrameProtocol::ParseAck(bad_verdict).ok());
  ack.verdict = AdmitVerdict::kAccepted;
  ack.degrade = static_cast<DegradeLevel>(7);
  const ByteBuffer bad_level = FrameProtocol::SerializeAck(ack);
  EXPECT_FALSE(FrameProtocol::ParseAck(bad_level).ok());
}

// ---------------------------------------------------------------------------
// TcpListener::Accept error paths, driven through the injected syscall
// seams: transient errnos retry, fatal errnos surface, and the peer fd is
// never leaked when post-accept setup fails.

TEST(TcpAcceptTest, RetriesTransientAcceptErrnos) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  int calls = 0;
  TcpListener::SyscallHooksForTest hooks;
  hooks.accept_fn = [&calls](int) {
    ++calls;
    if (calls == 1) {
      errno = EINTR;
      return -1;
    }
    if (calls == 2) {
      errno = ECONNABORTED;
      return -1;
    }
    return ::socket(AF_INET, SOCK_STREAM, 0);
  };
  hooks.setup_fn = [](int) { return 0; };
  listener.set_syscall_hooks_for_test(std::move(hooks));
  auto conn = listener.Accept();
  ASSERT_TRUE(conn.ok());
  EXPECT_TRUE(conn.value().IsOpen());
  EXPECT_EQ(calls, 3);
}

TEST(TcpAcceptTest, FatalAcceptErrnoSurfacesAsIOError) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  int calls = 0;
  TcpListener::SyscallHooksForTest hooks;
  hooks.accept_fn = [&calls](int) {
    ++calls;
    errno = EMFILE;  // Out of fds: retrying can't help.
    return -1;
  };
  listener.set_syscall_hooks_for_test(std::move(hooks));
  auto conn = listener.Accept();
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(calls, 1);
}

TEST(TcpAcceptTest, ClosesPeerFdWhenSetupFails) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  int peer = -1;
  TcpListener::SyscallHooksForTest hooks;
  hooks.accept_fn = [&peer](int) {
    peer = ::socket(AF_INET, SOCK_STREAM, 0);
    return peer;
  };
  hooks.setup_fn = [](int) {
    errno = EINVAL;
    return -1;
  };
  listener.set_syscall_hooks_for_test(std::move(hooks));
  auto conn = listener.Accept();
  EXPECT_FALSE(conn.ok());
  // The regression: the accepted fd must have been closed, not leaked.
  ASSERT_GE(peer, 0);
  errno = 0;
  EXPECT_EQ(::fcntl(peer, F_GETFD), -1);
  EXPECT_EQ(errno, EBADF);
}

// ---------------------------------------------------------------------------
// LRU + newest-per-session pinning (the fleet eviction policy).

TEST(FrameStoreTest, GetRefreshesLruOrder) {
  MemoryFrameStore store(/*capacity=*/2);
  ASSERT_TRUE(store.Put(1, PayloadOfSize(4)).ok());
  ASSERT_TRUE(store.Put(2, PayloadOfSize(4)).ok());
  // A Get makes frame 1 the most recently used; 2 is its session's newest
  // but the incoming 3 supersedes it, so plain LRU evicts 2 — not the
  // oldest id.
  ASSERT_TRUE(store.Get(1).ok());
  ASSERT_TRUE(store.Put(3, PayloadOfSize(4)).ok());
  EXPECT_EQ(store.List(), (std::vector<uint64_t>{1, 3}));
}

TEST(FrameStoreTest, NewestFramePerSessionSurvivesOtherSessionsBurst) {
  MemoryFrameStore store(/*capacity=*/3);
  // Session 1 parks its keyframe, then session 2 floods the store.
  ASSERT_TRUE(store.Put(100, PayloadOfSize(8), /*session_id=*/1).ok());
  for (uint64_t id = 200; id < 210; ++id) {
    ASSERT_TRUE(store.Put(id, PayloadOfSize(8), /*session_id=*/2).ok());
  }
  // The burst only ever displaced session 2's own older frames.
  EXPECT_EQ(store.List(), (std::vector<uint64_t>{100, 208, 209}));
  EXPECT_TRUE(store.Get(100).ok());
  EXPECT_EQ(store.evicted(), 8u);
}

TEST(FrameStoreTest, AllPinnedFallsBackToPlainLru) {
  MemoryFrameStore store(/*capacity=*/2);
  // Two sessions, one frame each: every resident frame is pinned.
  ASSERT_TRUE(store.Put(1, PayloadOfSize(4), /*session_id=*/1).ok());
  ASSERT_TRUE(store.Put(2, PayloadOfSize(4), /*session_id=*/2).ok());
  // A third session still fits under the bound: the least-recently-used
  // pinned frame goes.
  ASSERT_TRUE(store.Put(3, PayloadOfSize(4), /*session_id=*/3).ok());
  EXPECT_EQ(store.List(), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(store.evicted(), 1u);
}

// ---------------------------------------------------------------------------
// Pipeline gauge integrity under churn: rejects, partial delivery, and the
// draining destructor interleave; the shared gauges must never dip below
// their baseline (the underflow this PR fixes) and must return to it.

TEST(PipelineBackpressureTest, GaugesNeverDipBelowBaselineUnderChurn) {
  const int64_t inflight0 = GaugeVal("pipeline_inflight");
  const int64_t depth0 = GaugeVal("pipeline_queue_depth");
  std::atomic<bool> stop{false};
  std::atomic<bool> saw_negative{false};
  std::thread sampler([&] {
    while (!stop.load()) {
      if (GaugeVal("pipeline_inflight") < inflight0 ||
          GaugeVal("pipeline_queue_depth") < depth0) {
        saw_negative.store(true);
      }
    }
  });
  for (int round = 0; round < 6; ++round) {
    CompressionPipeline::Config config;
    config.num_workers = 2;
    config.queue_capacity = 2;
    CompressionPipeline pipeline(SmallFrameOptions(), config);
    // Overrun the window (rejects), deliver one result, and let the
    // destructor release the rest.
    for (uint32_t f = 0; f < 6; ++f) {
      (void)pipeline.TrySubmit(SmallFrame(f));
    }
    (void)pipeline.NextResult();
  }
  stop.store(true);
  sampler.join();
  EXPECT_FALSE(saw_negative.load());
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(GaugeVal("pipeline_inflight"), inflight0);
    EXPECT_EQ(GaugeVal("pipeline_queue_depth"), depth0);
  }
}

// ---------------------------------------------------------------------------
// SessionManager: the multi-sensor fleet server (docs/FLEET.md) —
// admission verdicts, fair share, degradation ladder, and decode
// correctness across interleavings and thread budgets.

/// One compressed wire frame from `client` for the given scene seed.
ByteBuffer WireFrame(DbgcClient& client, uint32_t seed) {
  ClientFrameReport report;
  auto wire = client.ProcessFrame(SmallFrame(seed), &report);
  EXPECT_TRUE(wire.ok());
  return wire.ok() ? std::move(wire).value() : ByteBuffer();
}

bool SameCloud(const PointCloud& a, const PointCloud& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].x != b[i].x || a[i].y != b[i].y || a[i].z != b[i].z) return false;
  }
  return true;
}

/// Occupies every worker of `pool` until Release() — admission decisions
/// become deterministic because no accepted decode can retire.
class PoolBlocker {
 public:
  PoolBlocker(ThreadPool* pool, int workers) {
    for (int i = 0; i < workers; ++i) {
      pool->Schedule([this] {
        std::unique_lock<std::mutex> lock(m_);
        ++blocked_;
        cv_.notify_all();
        cv_.wait(lock, [this] { return released_; });
      });
    }
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [this, workers] { return blocked_ == workers; });
  }

  void Release() {
    std::unique_lock<std::mutex> lock(m_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  int blocked_ = 0;
  bool released_ = false;
};

TEST(FleetSessionTest, OpenCloseFairShareAndSessionTableBound) {
  FleetConfig config;
  config.max_sessions = 3;
  config.global_inflight_budget = 8;
  config.options = SmallFrameOptions();
  SessionManager fleet(config);
  EXPECT_EQ(fleet.budget(), 8u);
  EXPECT_EQ(fleet.fair_share(), 8u);  // No sessions: whole budget.

  auto s1 = fleet.OpenSession("roof");
  auto s2 = fleet.OpenSession("bumper");
  auto s3 = fleet.OpenSession();
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  EXPECT_EQ(fleet.open_sessions(), 3u);
  EXPECT_EQ(fleet.fair_share(), 2u);  // 8 / 3, floored.
  EXPECT_FALSE(fleet.OpenSession("one too many").ok());

  ASSERT_TRUE(fleet.CloseSession(s3.value()).ok());
  EXPECT_EQ(fleet.open_sessions(), 2u);
  EXPECT_EQ(fleet.fair_share(), 4u);
  // Closing twice (or an unknown id) is refused.
  EXPECT_FALSE(fleet.CloseSession(s3.value()).ok());
  EXPECT_FALSE(fleet.CloseSession(999).ok());
  // A closed session keeps its stats readable but takes no more frames.
  EXPECT_TRUE(fleet.stats(s3.value()).ok());
  DbgcClient client(SmallFrameOptions());
  const FrameAck ack = fleet.SubmitFrame(s3.value(), WireFrame(client, 1));
  EXPECT_EQ(ack.verdict, AdmitVerdict::kRejectedUnknownSession);
}

TEST(FleetSessionTest, InterleavedSessionsMatchSequentialReplay) {
  constexpr int kSessions = 3;
  constexpr int kFrames = 3;
  // Each sensor has its own client (its own frame-id sequence and scene).
  std::vector<ByteBuffer> wires[kSessions];
  for (int s = 0; s < kSessions; ++s) {
    DbgcClient client(SmallFrameOptions());
    for (int f = 0; f < kFrames; ++f) {
      wires[s].push_back(WireFrame(client, 100 * s + f));
    }
  }

  FleetConfig config;
  config.global_inflight_budget = 64;
  config.num_workers = 4;
  config.options = SmallFrameOptions();
  SessionManager interleaved(config);
  SessionManager sequential(config);
  uint64_t ids_a[kSessions], ids_b[kSessions];
  for (int s = 0; s < kSessions; ++s) {
    ids_a[s] = interleaved.OpenSession().value();
    ids_b[s] = sequential.OpenSession().value();
  }
  // Round-robin (the fleet arrival order) vs one session at a time.
  for (int f = 0; f < kFrames; ++f) {
    for (int s = 0; s < kSessions; ++s) {
      const FrameAck ack = interleaved.SubmitFrame(ids_a[s], wires[s][f]);
      EXPECT_EQ(ack.verdict, AdmitVerdict::kAccepted);
    }
  }
  for (int s = 0; s < kSessions; ++s) {
    for (int f = 0; f < kFrames; ++f) {
      const FrameAck ack = sequential.SubmitFrame(ids_b[s], wires[s][f]);
      EXPECT_EQ(ack.verdict, AdmitVerdict::kAccepted);
    }
  }
  ASSERT_TRUE(interleaved.Drain().ok());
  ASSERT_TRUE(sequential.Drain().ok());

  const DbgcCodec reference(SmallFrameOptions());
  for (int s = 0; s < kSessions; ++s) {
    // Decode state: interleaving must not change any session's result.
    auto a = interleaved.LatestCloud(ids_a[s]);
    auto b = sequential.LatestCloud(ids_b[s]);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(SameCloud(a.value(), b.value())) << "session " << s;
    // And it matches a serial reference decode of the last payload.
    auto frame = FrameProtocol::Parse(wires[s][kFrames - 1]);
    ASSERT_TRUE(frame.ok());
    auto ref = reference.Decompress(frame.value().payload);
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(SameCloud(a.value(), ref.value())) << "session " << s;
    // The session store archived the payload byte-for-byte.
    const MemoryFrameStore* store = interleaved.store(ids_a[s]);
    ASSERT_NE(store, nullptr);
    auto archived = store->Get(frame.value().frame_id);
    ASSERT_TRUE(archived.ok());
    EXPECT_EQ(archived.value(), frame.value().payload);
    // Per-session accounting.
    auto stats = interleaved.stats(ids_a[s]);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().accepted, static_cast<uint64_t>(kFrames));
    EXPECT_EQ(stats.value().decoded, static_cast<uint64_t>(kFrames));
    EXPECT_EQ(stats.value().decode_errors, 0u);
    EXPECT_EQ(stats.value().inflight, 0u);
  }
  EXPECT_EQ(interleaved.inflight(), 0u);
}

TEST(FleetSessionTest, AdmissionRejectsDeterministicallyWhenPoolBlocked) {
  ThreadPool pool(2);
  PoolBlocker blocker(&pool, 2);

  FleetConfig config;
  config.pool = &pool;
  config.global_inflight_budget = 4;
  config.options = SmallFrameOptions();
  SessionManager fleet(config);
  const uint64_t s1 = fleet.OpenSession().value();
  const uint64_t s2 = fleet.OpenSession().value();
  EXPECT_EQ(fleet.fair_share(), 2u);

  DbgcClient c1(SmallFrameOptions()), c2(SmallFrameOptions()),
      c3(SmallFrameOptions());
  // Session 1 fills its fair share (2 of 4), then is throttled.
  EXPECT_EQ(fleet.SubmitFrame(s1, WireFrame(c1, 1)).verdict,
            AdmitVerdict::kAccepted);
  EXPECT_EQ(fleet.SubmitFrame(s1, WireFrame(c1, 2)).verdict,
            AdmitVerdict::kAccepted);
  EXPECT_EQ(fleet.SubmitFrame(s1, WireFrame(c1, 3)).verdict,
            AdmitVerdict::kRejectedSessionShare);
  // Session 2 fills the remaining global budget.
  EXPECT_EQ(fleet.SubmitFrame(s2, WireFrame(c2, 1)).verdict,
            AdmitVerdict::kAccepted);
  EXPECT_EQ(fleet.SubmitFrame(s2, WireFrame(c2, 2)).verdict,
            AdmitVerdict::kAccepted);
  EXPECT_EQ(fleet.inflight(), 4u);
  // A third session is within its (recomputed) share but the global
  // budget is gone.
  const uint64_t s3 = fleet.OpenSession().value();
  EXPECT_EQ(fleet.fair_share(), 1u);
  EXPECT_EQ(fleet.SubmitFrame(s3, WireFrame(c3, 1)).verdict,
            AdmitVerdict::kRejectedGlobalBudget);
  // Unknown session and parse failures have their own verdicts.
  EXPECT_EQ(fleet.SubmitFrame(999, WireFrame(c3, 2)).verdict,
            AdmitVerdict::kRejectedUnknownSession);
  ByteBuffer junk;
  for (int i = 0; i < 32; ++i) junk.AppendByte(static_cast<uint8_t>(i));
  EXPECT_EQ(fleet.SubmitFrame(s1, junk).verdict, AdmitVerdict::kRejectedParse);

  blocker.Release();
  ASSERT_TRUE(fleet.Drain().ok());
  EXPECT_EQ(fleet.inflight(), 0u);
  auto stats1 = fleet.stats(s1);
  ASSERT_TRUE(stats1.ok());
  EXPECT_EQ(stats1.value().submitted, 4u);  // 3 frames + the junk.
  EXPECT_EQ(stats1.value().accepted, 2u);
  EXPECT_EQ(stats1.value().rejected, 2u);
  EXPECT_EQ(stats1.value().decoded, 2u);
  auto stats3 = fleet.stats(s3);
  ASSERT_TRUE(stats3.ok());
  EXPECT_EQ(stats3.value().accepted, 0u);
  EXPECT_EQ(stats3.value().rejected, 1u);
}

TEST(FleetSessionTest, DegradationLadderAdvertisedUnderLoad) {
  ThreadPool pool(2);
  PoolBlocker blocker(&pool, 2);

  FleetConfig config;
  config.pool = &pool;
  config.global_inflight_budget = 4;  // Thresholds: coarse at 2, cheap at 4.
  config.options = SmallFrameOptions();
  SessionManager fleet(config);
  const uint64_t s1 = fleet.OpenSession().value();
  EXPECT_EQ(fleet.advertised_degrade(), DegradeLevel::kNone);

  DbgcClient client(SmallFrameOptions());
  // Post-decision load drives the ladder: 1/4 none, 2/4 coarser, 3/4
  // coarser, 4/4 cheap — and rejected frames hear the current level too.
  EXPECT_EQ(fleet.SubmitFrame(s1, WireFrame(client, 1)).degrade,
            DegradeLevel::kNone);
  EXPECT_EQ(fleet.SubmitFrame(s1, WireFrame(client, 2)).degrade,
            DegradeLevel::kCoarserQuant);
  EXPECT_EQ(fleet.SubmitFrame(s1, WireFrame(client, 3)).degrade,
            DegradeLevel::kCoarserQuant);
  EXPECT_EQ(fleet.SubmitFrame(s1, WireFrame(client, 4)).degrade,
            DegradeLevel::kCheapCodec);
  EXPECT_EQ(fleet.advertised_degrade(), DegradeLevel::kCheapCodec);
  const FrameAck rejected = fleet.SubmitFrame(s1, WireFrame(client, 5));
  EXPECT_NE(rejected.verdict, AdmitVerdict::kAccepted);
  EXPECT_EQ(rejected.degrade, DegradeLevel::kCheapCodec);

  blocker.Release();
  ASSERT_TRUE(fleet.Drain().ok());
  EXPECT_EQ(fleet.advertised_degrade(), DegradeLevel::kNone);
}

TEST(FleetSessionTest, ClientAppliesAdvertisedDegrade) {
  DbgcClient client(SmallFrameOptions());
  const PointCloud pc = SmallFrame(11);
  ClientFrameReport baseline;
  auto baseline_wire = client.ProcessFrame(pc, &baseline);
  ASSERT_TRUE(baseline_wire.ok());
  EXPECT_EQ(baseline.degrade, DegradeLevel::kNone);

  // The server's ack switches the encoder; each degraded stream is still
  // an ordinary self-describing DBGC bitstream.
  const DbgcCodec reference(SmallFrameOptions());
  for (const DegradeLevel level :
       {DegradeLevel::kCoarserQuant, DegradeLevel::kCheapCodec}) {
    FrameAck ack;
    ack.degrade = level;
    client.ApplyAck(ack);
    EXPECT_EQ(client.degrade(), level);
    ClientFrameReport report;
    auto wire = client.ProcessFrame(pc, &report);
    ASSERT_TRUE(wire.ok());
    EXPECT_EQ(report.degrade, level);
    auto frame = FrameProtocol::Parse(wire.value());
    ASSERT_TRUE(frame.ok());
    auto cloud = reference.Decompress(frame.value().payload);
    ASSERT_TRUE(cloud.ok());
    EXPECT_GT(cloud.value().size(), 0u);
  }
  // Recovery: a kNone ack restores the baseline codec.
  client.ApplyAck(FrameAck());
  EXPECT_EQ(client.degrade(), DegradeLevel::kNone);
  ClientFrameReport recovered;
  auto recovered_wire = client.ProcessFrame(pc, &recovered);
  ASSERT_TRUE(recovered_wire.ok());
  EXPECT_EQ(recovered.degrade, DegradeLevel::kNone);
  EXPECT_EQ(recovered.compressed_bytes, baseline.compressed_bytes);
}

TEST(FleetSessionTest, DecodeThreadBudgetsAgree) {
  // One wire frame, decoded under fleet servers with intra-frame thread
  // budgets 1/2/8: the decoded cloud must be identical (the codec's
  // byte-identical contract, seen through the fleet path).
  DbgcClient client(SmallFrameOptions());
  const ByteBuffer wire = WireFrame(client, 21);
  auto frame = FrameProtocol::Parse(wire);
  ASSERT_TRUE(frame.ok());
  const DbgcCodec reference(SmallFrameOptions());
  auto ref_cloud = reference.Decompress(frame.value().payload);
  ASSERT_TRUE(ref_cloud.ok());

  for (const int budget : {1, 2, 8}) {
    FleetConfig config;
    config.max_threads_per_frame = budget;
    config.num_workers = 8;
    config.options = SmallFrameOptions();
    SessionManager fleet(config);
    const uint64_t sid = fleet.OpenSession().value();
    EXPECT_EQ(fleet.SubmitFrame(sid, wire).verdict, AdmitVerdict::kAccepted);
    ASSERT_TRUE(fleet.Drain().ok());
    auto cloud = fleet.LatestCloud(sid);
    ASSERT_TRUE(cloud.ok());
    EXPECT_TRUE(SameCloud(cloud.value(), ref_cloud.value()))
        << "thread budget " << budget;
  }

  // The single-client server takes the same decode-parallelism knob.
  ThreadPool pool(4);
  DbgcServer server;
  server.set_decode_parallelism(&pool, /*max_threads=*/4);
  ServerFrameReport report;
  ASSERT_TRUE(server.HandleFrame(wire, &report).ok());
  EXPECT_TRUE(SameCloud(server.stored_clouds().at(report.frame_id),
                        ref_cloud.value()));
}

TEST(FleetSessionTest, MetricsReturnToBaselineAfterTeardown) {
  const int64_t inflight0 = GaugeVal("fleet_inflight");
  const int64_t open0 = GaugeVal("fleet_sessions_open");
  std::atomic<uint64_t> reports{0};
  std::atomic<uint64_t> ok_reports{0};
  {
    FleetConfig config;
    config.global_inflight_budget = 8;
    config.num_workers = 2;
    config.options = SmallFrameOptions();
    config.on_frame_done = [&](const FleetFrameReport& report) {
      reports.fetch_add(1);
      if (report.ok && report.e2e_seconds >= report.decode_seconds &&
          report.decode_seconds >= 0.0 && report.num_points > 0) {
        ok_reports.fetch_add(1);
      }
    };
    SessionManager fleet(config);
    DbgcClient client(SmallFrameOptions());
    const uint64_t sid = fleet.OpenSession().value();
    for (uint32_t f = 0; f < 3; ++f) {
      EXPECT_EQ(fleet.SubmitFrame(sid, WireFrame(client, f)).verdict,
                AdmitVerdict::kAccepted);
    }
    // No Drain: the destructor itself must retire all in-flight state.
  }
  // The manager owned its pool, so after destruction every callback ran.
  EXPECT_EQ(reports.load(), 3u);
  EXPECT_EQ(ok_reports.load(), 3u);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(GaugeVal("fleet_inflight"), inflight0);
    EXPECT_EQ(GaugeVal("fleet_sessions_open"), open0);
  }
}

// Regression: Drain() once counted a frame as done before its
// on_frame_done callback returned, so a caller could destroy the state
// the callback captured while a pool thread was still writing to it
// (heap corruption first seen in bench_fleet_load). A frame may only
// drain after its callback finishes.
TEST(FleetSessionTest, DrainWaitsForCompletionCallbacks) {
  constexpr uint32_t kFrames = 4;
  ThreadPool pool(2);
  FleetConfig config;
  config.pool = &pool;
  config.global_inflight_budget = kFrames;
  config.options = SmallFrameOptions();
  auto latencies = std::make_unique<std::vector<double>>();
  std::mutex latencies_mutex;
  config.on_frame_done = [&](const FleetFrameReport& report) {
    // Dawdle so a premature Drain() would realistically win the race.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::lock_guard<std::mutex> lock(latencies_mutex);
    latencies->push_back(report.e2e_seconds);
  };
  SessionManager fleet(config);
  DbgcClient client(SmallFrameOptions());
  const uint64_t sid = fleet.OpenSession().value();
  for (uint32_t f = 0; f < kFrames; ++f) {
    EXPECT_EQ(fleet.SubmitFrame(sid, WireFrame(client, f)).verdict,
              AdmitVerdict::kAccepted);
  }
  ASSERT_TRUE(fleet.Drain().ok());
  // After Drain, every callback has run to completion and the capture may
  // die (the bench's exact usage pattern).
  EXPECT_EQ(latencies->size(), kFrames);
  latencies.reset();
}

// ---------------------------------------------------------------------------
// Fleet stress: many submitter threads, shared pool, small budget — run
// under TSan by scripts/check.sh. Assertions are accounting invariants;
// the interleavings themselves are the test.

TEST(FleetStress, ConcurrentSubmittersStayConsistent) {
  constexpr int kSessions = 8;
  constexpr int kSubmitters = 4;
  constexpr int kFramesPerSubmitter = 24;

  // Pre-compress one wire frame per session (submission should stress the
  // fleet server, not the encoder).
  std::vector<ByteBuffer> wires;
  for (int s = 0; s < kSessions; ++s) {
    DbgcClient client(SmallFrameOptions());
    wires.push_back(WireFrame(client, static_cast<uint32_t>(s)));
  }

  ThreadPool pool(4);
  FleetConfig config;
  config.pool = &pool;
  config.global_inflight_budget = 6;
  config.session_store_capacity = 4;
  config.options = SmallFrameOptions();
  SessionManager fleet(config);
  uint64_t sids[kSessions];
  for (int s = 0; s < kSessions; ++s) {
    sids[s] = fleet.OpenSession().value();
  }

  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kFramesPerSubmitter; ++i) {
        const int s = (t + i) % kSessions;
        const FrameAck ack = fleet.SubmitFrame(sids[s], wires[s]);
        if (ack.verdict == AdmitVerdict::kAccepted) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
          // Oversubscription rejects are load rejects, never bogus ids.
          EXPECT_TRUE(ack.verdict == AdmitVerdict::kRejectedSessionShare ||
                      ack.verdict == AdmitVerdict::kRejectedGlobalBudget);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  ASSERT_TRUE(fleet.Drain().ok());

  EXPECT_EQ(accepted.load() + rejected.load(),
            static_cast<uint64_t>(kSubmitters * kFramesPerSubmitter));
  EXPECT_GT(accepted.load(), 0u);
  EXPECT_EQ(fleet.inflight(), 0u);
  uint64_t decoded_sum = 0, accepted_sum = 0;
  for (int s = 0; s < kSessions; ++s) {
    auto stats = fleet.stats(sids[s]);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().inflight, 0u);
    EXPECT_EQ(stats.value().decoded + stats.value().decode_errors,
              stats.value().accepted);
    EXPECT_EQ(stats.value().decode_errors, 0u);
    decoded_sum += stats.value().decoded;
    accepted_sum += stats.value().accepted;
    if (stats.value().decoded > 0) {
      EXPECT_TRUE(fleet.LatestCloud(sids[s]).ok());
    }
  }
  EXPECT_EQ(accepted_sum, accepted.load());
  EXPECT_EQ(decoded_sum, accepted.load());
}

// ---------------------------------------------------------------------------
// Temporal I/P streaming over the net layers (docs/TEMPORAL.md): the
// pipeline's ordered encode actor and the fleet session's ordered decode
// actor with keyframe resynchronization after an admission loss.

SensorMetadata TemporalNetSensor() {
  return SensorMetadata::VelodyneHdl64e(256);
}

TemporalConfig TemporalNetConfig() {
  TemporalConfig config;
  config.keyframe_interval = 3;
  config.sensor = TemporalNetSensor();
  return config;
}

std::vector<StreamFrame> TemporalNetDrive(size_t num_frames) {
  const SceneGenerator gen(SceneType::kCity);
  return gen.GenerateSequence(num_frames, SequenceConfig(),
                              TemporalNetSensor());
}

TEST(TemporalPipelineTest, OrderedPacketsMatchSerialEncoder) {
  const std::vector<StreamFrame> drive = TemporalNetDrive(5);
  CompressionPipeline::Config config;
  config.num_workers = 2;
  config.temporal = TemporalNetConfig();
  CompressionPipeline pipeline(DbgcOptions(), config);
  ASSERT_TRUE(pipeline.temporal());
  for (const StreamFrame& frame : drive) {
    pipeline.Submit(frame.cloud, frame.pose);
  }
  ASSERT_TRUE(pipeline.Drain().ok());

  // Despite two pool workers, the single encode actor must produce the
  // exact packet sequence of a serial encoder: I P P I P.
  TemporalEncoder reference(TemporalNetConfig());
  for (size_t i = 0; i < drive.size(); ++i) {
    auto got = pipeline.NextResult();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    CompressParams params;
    params.q_xyz = TemporalNetConfig().intra_options.q_xyz;
    auto want = reference.EncodeFrame(drive[i].cloud, drive[i].pose, params);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.value() == want.value())
        << "pipeline packet " << i << " differs from the serial encoder";
    EXPECT_EQ(got.value()[0], i % 3 == 0 ? kTemporalFrameIntra
                                         : kTemporalFramePredicted);
  }
}

TEST(TemporalPipelineTest, ForceKeyframeRestartsTheChain) {
  const std::vector<StreamFrame> drive = TemporalNetDrive(4);
  CompressionPipeline::Config config;
  config.num_workers = 1;
  TemporalConfig temporal = TemporalNetConfig();
  temporal.keyframe_interval = 100;  // Interval alone would emit I once.
  config.temporal = temporal;
  CompressionPipeline pipeline(DbgcOptions(), config);

  auto next_type = [&](const StreamFrame& frame) {
    pipeline.Submit(frame.cloud, frame.pose);
    auto result = pipeline.NextResult();
    EXPECT_TRUE(result.ok());
    return result.ok() ? result.value()[0] : uint8_t{0};
  };
  EXPECT_EQ(next_type(drive[0]), kTemporalFrameIntra);
  EXPECT_EQ(next_type(drive[1]), kTemporalFramePredicted);
  // The client-side reaction to a degradation advisory or loss report.
  pipeline.ForceKeyframe();
  EXPECT_EQ(next_type(drive[2]), kTemporalFrameIntra);
  EXPECT_EQ(next_type(drive[3]), kTemporalFramePredicted);
}

TEST(TemporalPipelineTest, RefusedFrameLeavesStreamDecodable) {
  const std::vector<StreamFrame> drive = TemporalNetDrive(3);
  ThreadPool pool(1);
  auto blocker = std::make_unique<PoolBlocker>(&pool, 1);
  CompressionPipeline::Config config;
  config.pool = &pool;
  config.queue_capacity = 1;
  config.temporal = TemporalNetConfig();
  CompressionPipeline pipeline(DbgcOptions(), config);

  // Frame 0 fills the window while the pool is blocked; frame 1 is
  // refused — an admission loss on the *encode* side. It never reaches
  // the encoder, so the emitted stream has no hole: frame 2's P-packet
  // predicts from frame 0's reconstruction.
  EXPECT_TRUE(pipeline.TrySubmit(drive[0].cloud, drive[0].pose, nullptr));
  EXPECT_FALSE(pipeline.TrySubmit(drive[1].cloud, drive[1].pose, nullptr));
  EXPECT_EQ(pipeline.rejected(), 1u);
  blocker->Release();
  auto first = pipeline.NextResult();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(pipeline.TrySubmit(drive[2].cloud, drive[2].pose, nullptr));
  ASSERT_TRUE(pipeline.Drain().ok());
  auto second = pipeline.NextResult();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value()[0], kTemporalFramePredicted);

  TemporalDecoder decoder(DbgcOptions(), /*count_decode_errors=*/false);
  ASSERT_TRUE(decoder.DecodeFrame(first.value()).ok());
  auto decoded = decoder.DecodeFrame(second.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // The refused frame left no gap: the P-packet still reconstructs frame
  // 2 exactly on the grid.
  auto oracle = TemporalGridReconstruction(
      drive[2].cloud, TemporalNetConfig().intra_options.q_xyz,
      TemporalNetSensor());
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(SameCloud(decoded.value(), oracle.value()));
}

TEST(FleetSessionTest, TemporalSessionResyncsAtKeyframeAfterReject) {
  // Encode the drive I0 P1 P2 I3 P4, then lose P1 to admission control:
  // P2 must fail closed, I3 must resync, and P4 must decode to exactly
  // what a lossless replay yields.
  const std::vector<StreamFrame> drive = TemporalNetDrive(5);
  TemporalEncoder encoder(TemporalNetConfig());
  std::vector<ByteBuffer> packets;
  for (const StreamFrame& frame : drive) {
    auto packet = encoder.EncodeFrame(frame.cloud, frame.pose);
    ASSERT_TRUE(packet.ok());
    packets.push_back(std::move(packet).value());
  }
  auto wire = [](uint64_t id, const ByteBuffer& payload) {
    Frame frame;
    frame.frame_id = id;
    frame.payload = payload;
    return FrameProtocol::Serialize(frame);
  };

  ThreadPool pool(2);
  auto blocker = std::make_unique<PoolBlocker>(&pool, 2);
  FleetConfig config;
  config.pool = &pool;
  config.global_inflight_budget = 1;
  SessionManager fleet(config);
  const uint64_t sid = fleet.OpenSession("lidar-0").value();

  // I0 holds the whole budget while the pool is blocked, so P1's reject
  // is deterministic — the modeled packet loss.
  EXPECT_EQ(fleet.SubmitFrame(sid, wire(0, packets[0])).verdict,
            AdmitVerdict::kAccepted);
  EXPECT_EQ(fleet.SubmitFrame(sid, wire(1, packets[1])).verdict,
            AdmitVerdict::kRejectedSessionShare);
  blocker->Release();
  ASSERT_TRUE(fleet.Drain().ok());

  // P2 references the lost frame: the decoder must fail closed, not emit
  // a guess from the stale reference.
  EXPECT_EQ(fleet.SubmitFrame(sid, wire(2, packets[2])).verdict,
            AdmitVerdict::kAccepted);
  ASSERT_TRUE(fleet.Drain().ok());
  {
    auto stats = fleet.stats(sid);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().decoded, 1u);
    EXPECT_EQ(stats.value().decode_errors, 1u);
  }

  // The next keyframe resynchronizes; the following P-frame then decodes.
  EXPECT_EQ(fleet.SubmitFrame(sid, wire(3, packets[3])).verdict,
            AdmitVerdict::kAccepted);
  ASSERT_TRUE(fleet.Drain().ok());
  EXPECT_EQ(fleet.SubmitFrame(sid, wire(4, packets[4])).verdict,
            AdmitVerdict::kAccepted);
  ASSERT_TRUE(fleet.Drain().ok());
  {
    auto stats = fleet.stats(sid);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().submitted, 5u);
    EXPECT_EQ(stats.value().accepted, 4u);
    EXPECT_EQ(stats.value().rejected, 1u);
    EXPECT_EQ(stats.value().decoded, 3u);
    EXPECT_EQ(stats.value().decode_errors, 1u);
  }

  // Byte-identical recovery: the fleet's latest cloud equals a lossless
  // reference decoder's view of frame 4 (loss only skips, never skews).
  TemporalDecoder reference(DbgcOptions(), /*count_decode_errors=*/false);
  ASSERT_TRUE(reference.DecodeFrame(packets[0]).ok());
  ASSERT_TRUE(reference.DecodeFrame(packets[1]).ok());
  ASSERT_TRUE(reference.DecodeFrame(packets[2]).ok());
  ASSERT_TRUE(reference.DecodeFrame(packets[3]).ok());
  auto expected = reference.DecodeFrame(packets[4]);
  ASSERT_TRUE(expected.ok());
  auto latest = fleet.LatestCloud(sid);
  ASSERT_TRUE(latest.ok());
  EXPECT_TRUE(SameCloud(latest.value(), expected.value()));
}

TEST(FleetSessionTest, TemporalFramesDecodeInOrderOnOneSession) {
  // A burst of temporal frames admitted back to back must decode in
  // admission order through the single session actor, even on a wide
  // pool — otherwise P-frames would race their own references.
  const std::vector<StreamFrame> drive = TemporalNetDrive(4);
  TemporalEncoder encoder(TemporalNetConfig());
  std::vector<ByteBuffer> packets;
  for (const StreamFrame& frame : drive) {
    auto packet = encoder.EncodeFrame(frame.cloud, frame.pose);
    ASSERT_TRUE(packet.ok());
    packets.push_back(std::move(packet).value());
  }

  ThreadPool pool(4);
  FleetConfig config;
  config.pool = &pool;
  config.global_inflight_budget = 8;
  SessionManager fleet(config);
  const uint64_t sid = fleet.OpenSession().value();
  for (size_t i = 0; i < packets.size(); ++i) {
    Frame frame;
    frame.frame_id = i;
    frame.payload = packets[i];
    EXPECT_EQ(fleet.SubmitFrame(sid, FrameProtocol::Serialize(frame)).verdict,
              AdmitVerdict::kAccepted);
  }
  ASSERT_TRUE(fleet.Drain().ok());
  auto stats = fleet.stats(sid);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().decoded, 4u);
  EXPECT_EQ(stats.value().decode_errors, 0u);

  TemporalDecoder reference(DbgcOptions(), /*count_decode_errors=*/false);
  for (size_t i = 0; i + 1 < packets.size(); ++i) {
    ASSERT_TRUE(reference.DecodeFrame(packets[i]).ok());
  }
  auto expected = reference.DecodeFrame(packets.back());
  ASSERT_TRUE(expected.ok());
  auto latest = fleet.LatestCloud(sid);
  ASSERT_TRUE(latest.ok());
  EXPECT_TRUE(SameCloud(latest.value(), expected.value()));
}

}  // namespace
}  // namespace dbgc
