// Tests for src/net: channel model, frame protocol, and the client/server
// pipeline of Figure 2.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/error_metrics.h"
#include "harness/fault_injection.h"
#include "lidar/scene_generator.h"
#include "net/channel.h"
#include "net/client.h"
#include "net/frame_protocol.h"
#include "net/frame_store.h"
#include "net/pipeline.h"
#include "net/server.h"
#include "net/tcp_transport.h"
#include "obs/metrics.h"

namespace dbgc {
namespace {

TEST(ChannelTest, TransferTimeIsLatencyPlusSerialization) {
  const SimulatedChannel ch(8.0, 0.1);  // 8 Mbps, 100 ms.
  // 1 MB = 8 Mbit -> 1 second on the wire + latency.
  EXPECT_NEAR(ch.TransferSeconds(1000000), 1.1, 1e-9);
}

TEST(ChannelTest, SustainabilityCheck) {
  const SimulatedChannel mobile = SimulatedChannel::Mobile4G();
  // A raw HDL-64E stream (9.6 Mbit/frame at 10 fps = 96 Mbps) exceeds 4G.
  EXPECT_FALSE(mobile.CanSustain(1200000, 10.0));
  // A DBGC-compressed stream (~0.6 Mbit/frame -> 6 Mbps) fits.
  EXPECT_TRUE(mobile.CanSustain(75000, 10.0));
  // Both fit 100BASE-TX.
  EXPECT_TRUE(SimulatedChannel::Ethernet100().CanSustain(1200000, 10.0));
}

TEST(FrameProtocolTest, RoundTrip) {
  Frame frame;
  frame.frame_id = 1234;
  for (int i = 0; i < 1000; ++i) {
    frame.payload.AppendByte(static_cast<uint8_t>(i * 7));
  }
  const ByteBuffer wire = FrameProtocol::Serialize(frame);
  EXPECT_EQ(wire.size(), FrameProtocol::kHeaderBytes + 1000);
  auto parsed = FrameProtocol::Parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().frame_id, 1234u);
  EXPECT_EQ(parsed.value().payload, frame.payload);
}

TEST(FrameProtocolTest, ChecksumDetectsCorruption) {
  Frame frame;
  frame.frame_id = 1;
  for (int i = 0; i < 64; ++i) frame.payload.AppendByte(7);
  ByteBuffer wire = FrameProtocol::Serialize(frame);
  wire.mutable_bytes()[FrameProtocol::kHeaderBytes + 10] ^= 0xFF;
  EXPECT_FALSE(FrameProtocol::Parse(wire).ok());
}

TEST(FrameProtocolTest, BadMagicAndTruncation) {
  Frame frame;
  frame.frame_id = 2;
  frame.payload.AppendByte(1);
  ByteBuffer wire = FrameProtocol::Serialize(frame);
  ByteBuffer bad = wire;
  bad.mutable_bytes()[0] = 'x';
  EXPECT_FALSE(FrameProtocol::Parse(bad).ok());
  ByteBuffer truncated;
  truncated.Append(wire.data(), wire.size() - 1);
  EXPECT_FALSE(FrameProtocol::Parse(truncated).ok());
}

TEST(FrameProtocolTest, ExhaustiveTruncationSweep) {
  // Round-trip under truncation at EVERY prefix length: the parser must
  // reject all of them cleanly (header cuts, length-field cuts, payload
  // cuts) and accept only the complete frame.
  Frame frame;
  frame.frame_id = 77;
  for (int i = 0; i < 256; ++i) {
    frame.payload.AppendByte(static_cast<uint8_t>(i));
  }
  const ByteBuffer wire = FrameProtocol::Serialize(frame);
  harness::FaultInjector injector(11);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(FrameProtocol::Parse(injector.Truncate(wire, cut)).ok())
        << "truncated frame accepted at prefix length " << cut;
  }
  auto parsed = FrameProtocol::Parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().payload, frame.payload);
}

TEST(FrameProtocolTest, StructuredFaultsRejectedOrExact) {
  Frame frame;
  frame.frame_id = 78;
  for (int i = 0; i < 512; ++i) {
    frame.payload.AppendByte(static_cast<uint8_t>(i * 13));
  }
  const ByteBuffer wire = FrameProtocol::Serialize(frame);
  harness::FaultInjector injector(12);
  for (const harness::InjectedFault& fault :
       injector.AllFaults(wire, wire, 16)) {
    auto parsed = FrameProtocol::Parse(fault.stream);
    if (!parsed.ok()) continue;
    // Anything accepted must be byte-exact: the header fields and FNV
    // checksum leave no room for a silently different payload.
    EXPECT_EQ(parsed.value().payload, frame.payload)
        << "corrupted frame accepted (" << fault.description << ")";
  }
}

TEST(ClientServerTest, EndToEndPipeline) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  DbgcClient client(options);
  DbgcServer server;

  const SceneGenerator gen(SceneType::kCity);
  for (uint32_t f = 0; f < 2; ++f) {
    const PointCloud full = gen.Generate(f);
    PointCloud pc;
    for (size_t i = 0; i < full.size(); i += 8) pc.Add(full[i]);

    ClientFrameReport creport;
    auto wire = client.ProcessFrame(pc, &creport);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EXPECT_EQ(creport.frame_id, f);
    EXPECT_GT(creport.compress_seconds, 0.0);
    EXPECT_LT(creport.compressed_bytes, creport.raw_bytes);

    ServerFrameReport sreport;
    ASSERT_TRUE(server.HandleFrame(wire.value(), &sreport).ok());
    EXPECT_EQ(sreport.frame_id, f);
    EXPECT_EQ(sreport.num_points, pc.size());

    // Stored cloud is geometrically close to the capture.
    const PointCloud& stored = server.stored_clouds().at(f);
    const ErrorStats stats = NearestNeighborError(pc, stored);
    EXPECT_LE(stats.max_euclidean, 0.04);
  }
  EXPECT_EQ(server.stored_clouds().size(), 2u);
}

TEST(ClientServerTest, StoreCompressedMode) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  DbgcClient client(options);
  DbgcServer server(/*store_compressed=*/true);

  const SceneGenerator gen(SceneType::kRoad);
  const PointCloud full = gen.Generate(0);
  PointCloud pc;
  for (size_t i = 0; i < full.size(); i += 20) pc.Add(full[i]);

  ClientFrameReport creport;
  auto wire = client.ProcessFrame(pc, &creport);
  ASSERT_TRUE(wire.ok());
  ServerFrameReport sreport;
  ASSERT_TRUE(server.HandleFrame(wire.value(), &sreport).ok());
  EXPECT_TRUE(server.stored_clouds().empty());
  ASSERT_EQ(server.stored_bitstreams().size(), 1u);

  // The archived bitstream is decodable later.
  const DbgcCodec codec(options);
  auto decoded = codec.Decompress(server.stored_bitstreams().at(0));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), pc.size());
}

TEST(ClientServerTest, ArchiveReceivesBitstreams) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  DbgcClient client(options);
  MemoryFrameStore archive;
  DbgcServer server;
  server.set_archive(&archive);

  const SceneGenerator gen(SceneType::kCampus);
  const PointCloud full = gen.Generate(0);
  PointCloud pc;
  for (size_t i = 0; i < full.size(); i += 25) pc.Add(full[i]);

  ClientFrameReport creport;
  auto wire = client.ProcessFrame(pc, &creport);
  ASSERT_TRUE(wire.ok());
  ServerFrameReport sreport;
  ASSERT_TRUE(server.HandleFrame(wire.value(), &sreport).ok());
  // The archive holds the decodable bitstream alongside the live cloud.
  ASSERT_EQ(archive.List().size(), 1u);
  const DbgcCodec codec(options);
  auto archived = archive.Get(0);
  ASSERT_TRUE(archived.ok());
  auto decoded = codec.Decompress(archived.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), pc.size());
}

TEST(ClientServerTest, OverRealTcpLoopback) {
  // The full Figure 2 path over an actual socket: client compresses and
  // frames, bytes cross a loopback TCP connection, server decompresses.
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  DbgcClient client(options);
  DbgcServer server;

  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());

  const SceneGenerator gen(SceneType::kUrban);
  const PointCloud full = gen.Generate(0);
  PointCloud pc;
  for (size_t i = 0; i < full.size(); i += 20) pc.Add(full[i]);

  std::thread server_thread([&] {
    auto conn = listener.Accept();
    ASSERT_TRUE(conn.ok());
    auto wire = conn.value().ReceiveFrame();
    ASSERT_TRUE(wire.ok());
    ServerFrameReport report;
    ASSERT_TRUE(server.HandleFrame(wire.value(), &report).ok());
  });

  auto conn = TcpConnect(listener.port());
  ASSERT_TRUE(conn.ok());
  ClientFrameReport creport;
  auto wire = client.ProcessFrame(pc, &creport);
  ASSERT_TRUE(wire.ok());
  ASSERT_TRUE(conn.value().SendFrame(wire.value()).ok());
  server_thread.join();

  ASSERT_EQ(server.stored_clouds().size(), 1u);
  EXPECT_EQ(server.stored_clouds().at(0).size(), pc.size());
}

TEST(ClientServerTest, CorruptWireRejected) {
  DbgcServer server;
  ByteBuffer junk;
  for (int i = 0; i < 100; ++i) junk.AppendByte(static_cast<uint8_t>(i));
  ServerFrameReport report;
  EXPECT_FALSE(server.HandleFrame(junk, &report).ok());
}

// ---------------------------------------------------------------------------
// CompressionPipeline admission control (docs/PARALLELISM.md): the bounded
// in-flight window, TrySubmit refusal, Drain, and shared-pool configs.

PointCloud SmallFrame(uint32_t seed) {
  Rng rng(seed);
  PointCloud pc;
  for (int i = 0; i < 400; ++i) {
    pc.Add(rng.NextRange(-20, 20), rng.NextRange(-20, 20),
           rng.NextRange(-2, 2));
  }
  return pc;
}

DbgcOptions SmallFrameOptions() {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  return options;
}

TEST(PipelineBackpressureTest, TrySubmitRefusesWhenWindowFull) {
  CompressionPipeline::Config config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  CompressionPipeline pipeline(SmallFrameOptions(), config);
  EXPECT_EQ(pipeline.capacity(), 2u);

  // The window counts undelivered frames, so two accepted submissions fill
  // it deterministically regardless of how fast the worker compresses.
  EXPECT_TRUE(pipeline.TrySubmit(SmallFrame(1)));
  EXPECT_TRUE(pipeline.TrySubmit(SmallFrame(2)));
  EXPECT_FALSE(pipeline.TrySubmit(SmallFrame(3)));
  EXPECT_EQ(pipeline.submitted(), 2u);

  // Delivering one result frees one slot; the refused frame now fits.
  ASSERT_TRUE(pipeline.NextResult().ok());
  uint64_t seq = 0;
  EXPECT_TRUE(pipeline.TrySubmit(SmallFrame(3), &seq));
  EXPECT_EQ(seq, 2u);
  EXPECT_FALSE(pipeline.TrySubmit(SmallFrame(4)));

  ASSERT_TRUE(pipeline.Drain().ok());
  ASSERT_TRUE(pipeline.NextResult().ok());
  ASSERT_TRUE(pipeline.NextResult().ok());
}

TEST(PipelineBackpressureTest, SubmitBlocksUntilWindowFrees) {
  CompressionPipeline::Config config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  CompressionPipeline pipeline(SmallFrameOptions(), config);

  EXPECT_EQ(pipeline.Submit(SmallFrame(1)), 0u);
  // A second Submit must wait for the window; free it from another thread
  // after a beat. If blocking were broken this still passes, but under
  // TSan/slow schedulers an eager Submit would race NextResult's delivery
  // accounting and trip the window invariant below.
  std::thread release([&pipeline] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(pipeline.NextResult().ok());
  });
  EXPECT_EQ(pipeline.Submit(SmallFrame(2)), 1u);
  release.join();
  EXPECT_EQ(pipeline.submitted(), 2u);
  ASSERT_TRUE(pipeline.Drain().ok());
  ASSERT_TRUE(pipeline.NextResult().ok());
}

TEST(PipelineBackpressureTest, DrainFlushesWithoutConsumingResults) {
  CompressionPipeline pipeline(SmallFrameOptions(), /*num_workers=*/2);
  const DbgcCodec reference(SmallFrameOptions());
  std::vector<ByteBuffer> expected;
  for (uint32_t f = 0; f < 3; ++f) {
    const PointCloud pc = SmallFrame(f);
    auto c = reference.Compress(pc, SmallFrameOptions().q_xyz);
    ASSERT_TRUE(c.ok());
    expected.push_back(std::move(c).value());
    pipeline.Submit(pc);
  }
  ASSERT_TRUE(pipeline.Drain().ok());
  // Drain is idempotent and leaves every result deliverable, in order.
  ASSERT_TRUE(pipeline.Drain().ok());
  for (size_t f = 0; f < expected.size(); ++f) {
    auto result = pipeline.NextResult();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value(), expected[f]) << "frame " << f;
  }
}

TEST(PipelineBackpressureTest, SharedPoolServesTwoPipelines) {
  ThreadPool pool(2);
  CompressionPipeline::Config config;
  config.pool = &pool;
  config.queue_capacity = 4;
  CompressionPipeline left(SmallFrameOptions(), config);
  CompressionPipeline right(SmallFrameOptions(), config);
  const DbgcCodec reference(SmallFrameOptions());

  for (uint32_t f = 0; f < 3; ++f) {
    left.Submit(SmallFrame(f));
    right.Submit(SmallFrame(100 + f));
  }
  for (uint32_t f = 0; f < 3; ++f) {
    auto serial_l = reference.Compress(SmallFrame(f), SmallFrameOptions().q_xyz);
    auto serial_r =
        reference.Compress(SmallFrame(100 + f), SmallFrameOptions().q_xyz);
    auto got_l = left.NextResult();
    auto got_r = right.NextResult();
    ASSERT_TRUE(serial_l.ok() && serial_r.ok());
    ASSERT_TRUE(got_l.ok() && got_r.ok());
    EXPECT_EQ(got_l.value(), serial_l.value()) << "left frame " << f;
    EXPECT_EQ(got_r.value(), serial_r.value()) << "right frame " << f;
  }
}

TEST(PipelineBackpressureTest, IntraFrameParallelismKeepsBytes) {
  // max_threads_per_frame = 0 hands each frame the whole pool; the
  // bitstream contract says the bytes cannot change.
  ThreadPool pool(3);
  CompressionPipeline::Config config;
  config.pool = &pool;
  config.max_threads_per_frame = 0;
  CompressionPipeline pipeline(SmallFrameOptions(), config);
  const DbgcCodec reference(SmallFrameOptions());

  const PointCloud pc = SmallFrame(7);
  auto serial = reference.Compress(pc, SmallFrameOptions().q_xyz);
  ASSERT_TRUE(serial.ok());
  pipeline.Submit(pc);
  auto parallel = pipeline.NextResult();
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel.value(), serial.value());
}

TEST(PipelineBackpressureTest, DestructorDrainsOutstandingFrames) {
  // Dropping a pipeline with accepted-but-undelivered frames must complete
  // their compressions before tearing down (tasks capture `this`).
  ThreadPool pool(2);
  {
    CompressionPipeline::Config config;
    config.pool = &pool;
    config.queue_capacity = 4;
    CompressionPipeline pipeline(SmallFrameOptions(), config);
    for (uint32_t f = 0; f < 4; ++f) pipeline.Submit(SmallFrame(f));
  }
  // The shared pool is still healthy after the pipeline is gone.
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.ParallelFor(0, 16, 1, [&](size_t lo, size_t hi) {
                    ran.fetch_add(static_cast<int>(hi - lo));
                  })
                  .ok());
  EXPECT_EQ(ran.load(), 16);
}

// ---------------------------------------------------------------------------
// Observability accounting (docs/OBSERVABILITY.md): the pipeline/store
// metrics must agree with the components' own ground-truth accessors. The
// registry is process-global, so every assertion is on a delta against a
// snapshot taken before the component ran.

uint64_t CounterVal(const char* name) {
  return obs::MetricsRegistry::Global().CounterValue(name);
}

int64_t GaugeVal(const char* name) {
  return obs::MetricsRegistry::Global().GetGauge(name)->Value();
}

TEST(PipelineBackpressureTest, MetricsMatchGroundTruthUnderFullWindow) {
  const uint64_t submitted0 = CounterVal("pipeline_submitted_total");
  const uint64_t rejected0 = CounterVal("pipeline_rejected_total");
  const uint64_t delivered0 = CounterVal("pipeline_delivered_total");
  const int64_t inflight0 = GaugeVal("pipeline_inflight");
  const int64_t depth0 = GaugeVal("pipeline_queue_depth");

  CompressionPipeline::Config config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  CompressionPipeline pipeline(SmallFrameOptions(), config);

  // Fill the window, then get refused twice: the rejected counter and the
  // accessor count every refusal, not just the first.
  EXPECT_TRUE(pipeline.TrySubmit(SmallFrame(1)));
  EXPECT_TRUE(pipeline.TrySubmit(SmallFrame(2)));
  EXPECT_FALSE(pipeline.TrySubmit(SmallFrame(3)));
  EXPECT_FALSE(pipeline.TrySubmit(SmallFrame(4)));
  EXPECT_EQ(pipeline.rejected(), 2u);
  EXPECT_EQ(pipeline.inflight(), 2u);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(CounterVal("pipeline_submitted_total") - submitted0, 2u);
    EXPECT_EQ(CounterVal("pipeline_rejected_total") - rejected0, 2u);
    EXPECT_EQ(GaugeVal("pipeline_inflight") - inflight0, 2);
  }

  // Drain and deliver everything: the window empties and the gauges return
  // to their baseline, so repeated runs compose additively.
  ASSERT_TRUE(pipeline.Drain().ok());
  ASSERT_TRUE(pipeline.NextResult().ok());
  ASSERT_TRUE(pipeline.NextResult().ok());
  EXPECT_EQ(pipeline.inflight(), 0u);
  EXPECT_EQ(pipeline.queue_depth(), 0u);
  EXPECT_EQ(pipeline.rejected(), 2u);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(CounterVal("pipeline_delivered_total") - delivered0, 2u);
    EXPECT_EQ(GaugeVal("pipeline_inflight"), inflight0);
    EXPECT_EQ(GaugeVal("pipeline_queue_depth"), depth0);
  }
}

TEST(PipelineBackpressureTest, DestructorReleasesUndeliveredInflight) {
  const int64_t inflight0 = GaugeVal("pipeline_inflight");
  const int64_t depth0 = GaugeVal("pipeline_queue_depth");
  {
    CompressionPipeline::Config config;
    config.num_workers = 1;
    config.queue_capacity = 4;
    CompressionPipeline pipeline(SmallFrameOptions(), config);
    for (uint32_t f = 0; f < 3; ++f) pipeline.Submit(SmallFrame(f));
    ASSERT_TRUE(pipeline.Drain().ok());
    // Consume one of three; the other two die undelivered with the
    // pipeline and must not leak inflight occupancy.
    ASSERT_TRUE(pipeline.NextResult().ok());
    EXPECT_EQ(pipeline.inflight(), 2u);
  }
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(GaugeVal("pipeline_inflight"), inflight0);
    EXPECT_EQ(GaugeVal("pipeline_queue_depth"), depth0);
  }
}

// ---------------------------------------------------------------------------
// MemoryFrameStore eviction (bounded capacity) and its accounting.

ByteBuffer PayloadOfSize(size_t n) {
  ByteBuffer buf;
  for (size_t i = 0; i < n; ++i) buf.AppendByte(static_cast<uint8_t>(i));
  return buf;
}

TEST(FrameStoreTest, BoundedStoreEvictsOldestIdFirst) {
  const uint64_t puts0 = CounterVal("store_put_total");
  const uint64_t evicted0 = CounterVal("store_evicted_total");
  const uint64_t miss0 = CounterVal("store_get_miss_total");

  MemoryFrameStore store(/*capacity=*/2);
  EXPECT_EQ(store.capacity(), 2u);
  ASSERT_TRUE(store.Put(10, PayloadOfSize(8)).ok());
  ASSERT_TRUE(store.Put(11, PayloadOfSize(8)).ok());
  EXPECT_EQ(store.evicted(), 0u);
  // A third id exceeds the bound: the oldest (smallest) id goes.
  ASSERT_TRUE(store.Put(12, PayloadOfSize(8)).ok());
  EXPECT_EQ(store.evicted(), 1u);
  EXPECT_EQ(store.List(), (std::vector<uint64_t>{11, 12}));
  EXPECT_FALSE(store.Get(10).ok());
  EXPECT_TRUE(store.Get(11).ok());
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(CounterVal("store_put_total") - puts0, 3u);
    EXPECT_EQ(CounterVal("store_evicted_total") - evicted0,
              store.evicted());
    EXPECT_EQ(CounterVal("store_get_miss_total") - miss0, 1u);
  }
}

TEST(FrameStoreTest, ReplacingAResidentIdNeverEvicts) {
  const int64_t bytes0 = GaugeVal("store_resident_bytes");
  MemoryFrameStore store(/*capacity=*/2);
  ASSERT_TRUE(store.Put(1, PayloadOfSize(10)).ok());
  ASSERT_TRUE(store.Put(2, PayloadOfSize(20)).ok());
  // Replacement at full capacity: same id set, new bytes, no eviction.
  ASSERT_TRUE(store.Put(1, PayloadOfSize(50)).ok());
  EXPECT_EQ(store.evicted(), 0u);
  EXPECT_EQ(store.List(), (std::vector<uint64_t>{1, 2}));
  auto got = store.Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().size(), 50u);
  if constexpr (obs::kEnabled) {
    // Resident bytes track the replacement delta exactly: 50 + 20.
    EXPECT_EQ(GaugeVal("store_resident_bytes") - bytes0, 70);
    EXPECT_GE(GaugeVal("store_resident_frames"), 2);
  }
}

TEST(FrameStoreTest, UnboundedDefaultNeverEvicts) {
  MemoryFrameStore store;  // capacity 0 = unbounded.
  for (uint64_t id = 0; id < 64; ++id) {
    ASSERT_TRUE(store.Put(id, PayloadOfSize(4)).ok());
  }
  EXPECT_EQ(store.evicted(), 0u);
  EXPECT_EQ(store.List().size(), 64u);
}

TEST(FrameStoreTest, LifecycleReleasesResidentGauges) {
  const int64_t frames0 = GaugeVal("store_resident_frames");
  const int64_t bytes0 = GaugeVal("store_resident_bytes");
  {
    MemoryFrameStore store(/*capacity=*/3);
    ASSERT_TRUE(store.Put(1, PayloadOfSize(16)).ok());
    ASSERT_TRUE(store.Put(2, PayloadOfSize(16)).ok());
    if constexpr (obs::kEnabled) {
      EXPECT_EQ(GaugeVal("store_resident_frames") - frames0, 2);
      EXPECT_EQ(GaugeVal("store_resident_bytes") - bytes0, 32);
    }
    // Remove drops one entry's share; eviction and destruction the rest.
    ASSERT_TRUE(store.Remove(1).ok());
    if constexpr (obs::kEnabled) {
      EXPECT_EQ(GaugeVal("store_resident_frames") - frames0, 1);
      EXPECT_EQ(GaugeVal("store_resident_bytes") - bytes0, 16);
    }
  }
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(GaugeVal("store_resident_frames"), frames0);
    EXPECT_EQ(GaugeVal("store_resident_bytes"), bytes0);
  }
}

// ---------------------------------------------------------------------------
// Concurrent store access. The assertions here are liveness and accounting;
// the locking itself is checked by ThreadSanitizer (scripts/check.sh runs
// this suite under -fsanitize=thread) and statically by dbgc_lint R8/R9 and
// the clang thread-safety gate.

TEST(FrameStoreConcurrency, ParallelPutGetEvictStaysConsistent) {
  constexpr uint64_t kIdSpace = 32;
  constexpr size_t kOps = 512;
  MemoryFrameStore store(/*capacity=*/8);
  ThreadPool pool(4);
  std::atomic<uint64_t> hits{0};
  ASSERT_TRUE(pool.ParallelFor(0, kOps, 1, [&](size_t lo, size_t hi) {
                    for (size_t i = lo; i < hi; ++i) {
                      const uint64_t id = i % kIdSpace;
                      ASSERT_TRUE(store.Put(id, PayloadOfSize(1 + i % 64)).ok());
                      auto got = store.Get((id + 7) % kIdSpace);
                      if (got.ok()) {
                        EXPECT_GE(got.value().size(), 1u);
                        hits.fetch_add(1);
                      }
                      if (i % 16 == 0) (void)store.Remove((id + 3) % kIdSpace);
                      EXPECT_LE(store.List().size(), 8u);
                    }
                  })
                  .ok());
  // Every surviving id is readable, occupancy respects the bound, and the
  // eviction counter accounts for the overflow traffic.
  const std::vector<uint64_t> ids = store.List();
  EXPECT_LE(ids.size(), 8u);
  for (const uint64_t id : ids) EXPECT_TRUE(store.Get(id).ok());
  EXPECT_GT(store.evicted(), 0u);
  EXPECT_GT(hits.load(), 0u);
}

}  // namespace
}  // namespace dbgc
