// Tests for src/obs: registry semantics, instrument arithmetic, the span
// taxonomy, and the >4 GiB cumulative-counter regression (the registry must
// saturate, never wrap, so derived ratios stay sane — see
// docs/OBSERVABILITY.md).
//
// The multithreaded stress tests double as the TSan gate in
// scripts/check.sh: counters, histograms, and concurrent ToJson() readers
// must be clean under -DDBGC_SANITIZE=thread.
//
// Value assertions are guarded with `if constexpr (!obs::kEnabled)`: under
// -DDBGC_OBS_OFF every instrument is a stub reading zero, and the point of
// building this suite in that configuration is that call sites compile
// unchanged.

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbgc {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Registry semantics.

TEST(MetricsRegistryTest, HandlesAreStableAndInterned) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("obs_test_counter");
  Counter* b = registry.GetCounter("obs_test_counter");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("obs_test_gauge");
  Gauge* g2 = registry.GetGauge("obs_test_gauge");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = registry.GetHistogram("obs_test_hist");
  Histogram* h2 = registry.GetHistogram("obs_test_hist");
  EXPECT_EQ(h1, h2);
  if constexpr (!kEnabled) return;
  // Different names get different instruments.
  EXPECT_NE(a, registry.GetCounter("obs_test_counter2"));
}

TEST(MetricsRegistryTest, CounterValueReadsBackAndMissingReadsZero) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  MetricsRegistry registry;
  registry.GetCounter("reads_back")->Add(41);
  registry.GetCounter("reads_back")->Increment();
  EXPECT_EQ(registry.CounterValue("reads_back"), 42u);
  EXPECT_EQ(registry.CounterValue("never_registered"), 0u);
}

TEST(MetricsRegistryTest, SumCountersWithPrefixSelectsByPrefix) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  MetricsRegistry registry;
  registry.GetCounter("family_total{codec=\"a\"}")->Add(3);
  registry.GetCounter("family_total{codec=\"b\"}")->Add(4);
  registry.GetCounter("other_total")->Add(100);
  EXPECT_EQ(registry.SumCountersWithPrefix("family_total"), 7u);
  EXPECT_EQ(registry.SumCountersWithPrefix("family_total{codec=\"a\""), 3u);
  EXPECT_EQ(registry.SumCountersWithPrefix("no_such_prefix"), 0u);
}

TEST(MetricsRegistryTest, LabeledNameCanonicalSpelling) {
  EXPECT_EQ(LabeledName("base", {}), "base");
  EXPECT_EQ(LabeledName("decode_error_total",
                        {{"codec", "DBGC"}, {"reason", "Corruption"}}),
            "decode_error_total{codec=\"DBGC\",reason=\"Corruption\"}");
}

TEST(MetricsRegistryTest, ResetForTestZeroesButKeepsHandles) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("reset_me");
  Gauge* g = registry.GetGauge("reset_me_too");
  Histogram* h = registry.GetHistogram("reset_me_three");
  c->Add(7);
  g->Add(-3);
  h->Observe(0.001);
  registry.ResetForTest();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
  // Handles are still the registered ones.
  EXPECT_EQ(registry.GetCounter("reset_me"), c);
  c->Increment();
  EXPECT_EQ(registry.CounterValue("reset_me"), 1u);
}

TEST(MetricsRegistryTest, ToJsonShapeAndOrdering) {
  MetricsRegistry registry;
  const std::string off_json = registry.ToJson();
  if constexpr (!kEnabled) {
    EXPECT_EQ(off_json, "{\"obs\": \"off\"}");
    return;
  }
  registry.GetCounter("zulu")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetGauge("depth")->Set(5);
  registry.GetHistogram("lat")->Observe(0.002);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"obs\": \"on\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Lexicographic key order: "alpha" before "zulu".
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zulu\""));
  // Histogram entries expose the documented fields.
  for (const char* field :
       {"\"count\"", "\"sum_ms\"", "\"p50_us\"", "\"p95_us\"", "\"p99_us\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

// ---------------------------------------------------------------------------
// Instrument arithmetic.

TEST(GaugeTest, DeltasCompose) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  Gauge g;
  g.Add(10);
  g.Sub(3);
  g.Add(1);
  EXPECT_EQ(g.Value(), 8);
  g.Sub(20);  // Gauges are signed; transient negatives are representable.
  EXPECT_EQ(g.Value(), -12);
  g.Set(0);
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, CountSumAndQuantiles) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // Empty histogram reads zero.

  // 90 fast observations and 10 slow ones: the median lands in the fast
  // bucket, the p99 in the slow one. Quantiles report the bucket's upper
  // edge, so check bucket membership rather than exact values.
  for (int i = 0; i < 90; ++i) h.Observe(100e-6);  // 100 us
  for (int i = 0; i < 10; ++i) h.Observe(50e-3);   // 50 ms
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_NEAR(h.SumSeconds(), 90 * 100e-6 + 10 * 50e-3, 1e-6);
  const double p50 = h.Quantile(0.5);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p50, 100e-6);
  EXPECT_LT(p50, 1e-3);  // Within 2x of 100 us (power-of-two buckets).
  EXPECT_GE(p99, 50e-3);
  EXPECT_LT(p99, 200e-3);
  EXPECT_LE(p50, p99);
}

TEST(HistogramTest, ExtremeObservationsLandInEdgeBuckets) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  Histogram h;
  h.Observe(0.0);       // Below 1 us: bucket 0.
  h.Observe(-1.0);      // Negative/NaN durations are dropped, never wrap.
  h.Observe(1000.0);    // Far beyond the last edge: open-ended bucket.
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_GT(h.Quantile(1.0), 0.0);
}

// ---------------------------------------------------------------------------
// The >4 GiB pathological-totals regression (satellite bugfix). Cumulative
// byte counters routinely exceed 2^32 on long captures; a 32-bit
// intermediate anywhere in the pipeline folds them to garbage.

TEST(CounterOverflowTest, CumulativeBytesPast4GiBDoNotWrap) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  Counter c;
  // 3 GiB + 3 GiB = 6 GiB: wraps to ~2 GiB in uint32 arithmetic.
  const uint64_t three_gib = 3ull << 30;
  c.Add(three_gib);
  c.Add(three_gib);
  EXPECT_EQ(c.Value(), 6ull << 30);
  EXPECT_GT(c.Value(), std::numeric_limits<uint32_t>::max());
}

TEST(CounterOverflowTest, CrossShardSumSaturatesInsteadOfWrapping) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  Counter c;
  // Two near-max contributions from the same thread land in one shard and
  // wrap at the atomic itself — that is unavoidable modular arithmetic. The
  // contract under test is the cross-shard merge: feed near-max totals from
  // distinct threads (distinct shards) and the merged Value() must
  // saturate at UINT64_MAX, not wrap to a small number.
  const uint64_t half = std::numeric_limits<uint64_t>::max() / 2 + 1;
  std::thread t1([&c, half] { c.Add(half); });
  std::thread t2([&c, half] { c.Add(half); });
  std::thread t3([&c] { c.Add(12345); });
  t1.join();
  t2.join();
  t3.join();
  EXPECT_EQ(c.Value(), std::numeric_limits<uint64_t>::max());
}

TEST(CounterOverflowTest, RegistryPrefixSumSaturates) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  MetricsRegistry registry;
  const uint64_t huge = std::numeric_limits<uint64_t>::max() - 10;
  registry.GetCounter("sat_total{codec=\"a\"}")->Add(huge);
  registry.GetCounter("sat_total{codec=\"b\"}")->Add(huge);
  EXPECT_EQ(registry.SumCountersWithPrefix("sat_total"),
            std::numeric_limits<uint64_t>::max());
}

// ---------------------------------------------------------------------------
// Multithreaded stress: the TSan gate. N writer threads hammer one counter,
// one gauge, and one histogram while readers snapshot concurrently; totals
// must come out exact and the run must be race-free under
// -DDBGC_SANITIZE=thread (scripts/check.sh).

TEST(MetricsStressTest, ConcurrentWritersAndReadersAreExactAndRaceFree) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("stress_events_total");
  Gauge* gauge = registry.GetGauge("stress_level");
  Histogram* histogram = registry.GetHistogram("stress_seconds");

  constexpr int kWriters = 8;
  constexpr int kOpsPerWriter = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter->Add(static_cast<uint64_t>(w + 1));
        gauge->Add(1);
        gauge->Sub(1);
        histogram->Observe(1e-6 * static_cast<double>(i % 1000));
      }
    });
  }
  // Two concurrent readers exercising the merge paths while writes land.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&registry, counter, histogram] {
      for (int i = 0; i < 200; ++i) {
        (void)counter->Value();
        (void)histogram->Quantile(0.95);
        (void)registry.ToJson();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  if constexpr (!kEnabled) return;
  // Sum over writers of w+1 per op: (1 + ... + kWriters) * kOpsPerWriter.
  const uint64_t expected =
      static_cast<uint64_t>(kWriters) * (kWriters + 1) / 2 * kOpsPerWriter;
  EXPECT_EQ(counter->Value(), expected);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count(),
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
}

TEST(MetricsStressTest, ConcurrentRegistrationIsSafeAndInterned) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &handles, t] {
      // Everyone registers the same name plus a private one.
      handles[static_cast<size_t>(t)] = registry.GetCounter("shared_total");
      registry.GetCounter("private_total{t=\"" + std::to_string(t) + "\"}")
          ->Increment();
      handles[static_cast<size_t>(t)]->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(handles[static_cast<size_t>(t)], handles[0]);
  }
  if constexpr (!kEnabled) return;
  EXPECT_EQ(registry.CounterValue("shared_total"),
            static_cast<uint64_t>(kThreads));
  EXPECT_EQ(registry.SumCountersWithPrefix("private_total"),
            static_cast<uint64_t>(kThreads));
}

// ---------------------------------------------------------------------------
// Trace spans and per-frame breakdowns.

TEST(TraceSpanTest, SpanFeedsSlotFrameTraceAndRegistry) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  Histogram* stage_hist = MetricsRegistry::Global().GetHistogram(
      LabeledName("stage_seconds", {{"stage", "ENT"}}));
  const uint64_t count_before = stage_hist->Count();

  double slot = 0.0;
  FrameTrace trace;
  {
    TraceSpan span(Stage::kEntropy, &slot);
    // Spin a hair so the duration is visibly non-negative.
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
  }
  EXPECT_GT(slot, 0.0);
  EXPECT_DOUBLE_EQ(trace.breakdown().seconds(Stage::kEntropy), slot);
  EXPECT_DOUBLE_EQ(trace.breakdown().TotalSeconds(), slot);
  EXPECT_EQ(stage_hist->Count(), count_before + 1);
}

TEST(TraceSpanTest, ReenteringAStageBillsOnlyTheOuterSpan) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  FrameTrace trace;
  double outer_slot = 0.0;
  double inner_slot = 0.0;
  {
    TraceSpan outer(Stage::kOctree, &outer_slot);
    {
      TraceSpan inner(Stage::kOctree, &inner_slot);
    }
  }
  // Both slots accumulate (slot accumulation stays additive), but the
  // frame breakdown and the registry bill the stage once: the recursive
  // inner span must not double-count wall time.
  EXPECT_GT(outer_slot, 0.0);
  EXPECT_DOUBLE_EQ(trace.breakdown().seconds(Stage::kOctree), outer_slot);
  EXPECT_LT(trace.breakdown().seconds(Stage::kOctree), outer_slot * 2);
}

TEST(TraceSpanTest, DistinctStagesNestIndependently) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  FrameTrace trace;
  {
    TraceSpan outer(Stage::kSparse);
    TraceSpan inner(Stage::kEntropy);
  }
  EXPECT_GT(trace.breakdown().seconds(Stage::kSparse), 0.0);
  EXPECT_GT(trace.breakdown().seconds(Stage::kEntropy), 0.0);
  // ENT is nested inside SPA, so it cannot exceed it.
  EXPECT_LE(trace.breakdown().seconds(Stage::kEntropy),
            trace.breakdown().seconds(Stage::kSparse));
}

TEST(FrameTraceTest, NestedTracesShadowAndRestore) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  FrameTrace outer;
  {
    FrameTrace inner;
    TraceSpan span(Stage::kOutlier);
  }
  // The span closed while `inner` was current: `outer` saw nothing.
  EXPECT_DOUBLE_EQ(outer.breakdown().seconds(Stage::kOutlier), 0.0);
  {
    TraceSpan span(Stage::kOutlier);
  }
  EXPECT_GT(outer.breakdown().seconds(Stage::kOutlier), 0.0);
}

TEST(FrameBreakdownTest, ToJsonListsEveryStageInOrder) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  FrameBreakdown breakdown;
  breakdown.Add(Stage::kClustering, 0.5);
  const std::string json = breakdown.ToJson();
  // All nine stages present, zero or not, and in enum order.
  size_t last = 0;
  for (const char* name :
       {"DEN", "OCT", "COR", "ORG", "SPA", "OUT", "ENT", "SER", "DEC"}) {
    const size_t pos = json.find("\"" + std::string(name) + "\"");
    ASSERT_NE(pos, std::string::npos) << name;
    EXPECT_GT(pos, last) << name;
    last = pos;
  }
}

TEST(StageNameTest, CoversTheWholeTaxonomy) {
  const char* expected[kStageCount] = {"DEN", "OCT", "COR", "ORG", "SPA",
                                       "OUT", "ENT", "SER", "DEC"};
  for (size_t i = 0; i < kStageCount; ++i) {
    EXPECT_STREQ(StageName(static_cast<Stage>(i)), expected[i]);
  }
}

TEST(MonotonicSecondsTest, IsMonotone) {
  const double a = MonotonicSeconds();
  const double b = MonotonicSeconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace obs
}  // namespace dbgc
