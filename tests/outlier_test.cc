// Tests for the outlier codec (Section 3.6, Table 2 variants).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/outlier_codec.h"

namespace dbgc {
namespace {

PointCloud ScatteredOutliers(size_t n, uint64_t seed) {
  // Outliers are typically far points with small z spread (Section 3.6).
  Rng rng(seed);
  PointCloud pc;
  for (size_t i = 0; i < n; ++i) {
    const double angle = rng.NextRange(0, 2 * M_PI);
    const double r = rng.NextRange(30, 110);
    pc.Add(r * std::cos(angle), r * std::sin(angle), rng.NextRange(-2, 6));
  }
  return pc;
}

std::vector<uint32_t> AllIndices(const PointCloud& pc) {
  std::vector<uint32_t> indices(pc.size());
  for (uint32_t i = 0; i < pc.size(); ++i) indices[i] = i;
  return indices;
}

class OutlierModeTest : public ::testing::TestWithParam<OutlierMode> {};

TEST_P(OutlierModeTest, RoundTripWithinBound) {
  const OutlierMode mode = GetParam();
  const PointCloud pc = ScatteredOutliers(800, 1);
  const double q = 0.02;
  std::vector<uint32_t> order;
  auto compressed = OutlierCodec::Compress(pc, AllIndices(pc), q, mode, &order);
  ASSERT_TRUE(compressed.ok());
  ASSERT_EQ(order.size(), pc.size());
  auto decoded = OutlierCodec::Decompress(compressed.value(), mode);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), pc.size());
  // The emitted order mapping must pair each decoded point with its source
  // within the bound on every dimension.
  for (size_t i = 0; i < order.size(); ++i) {
    const Point3& src = pc[order[i]];
    const Point3& dec = decoded.value()[i];
    EXPECT_LE(std::fabs(src.x - dec.x), q * (1 + 1e-9)) << i;
    EXPECT_LE(std::fabs(src.y - dec.y), q * (1 + 1e-9)) << i;
    EXPECT_LE(std::fabs(src.z - dec.z), q * (1 + 1e-9)) << i;
  }
}

TEST_P(OutlierModeTest, EmptySet) {
  const OutlierMode mode = GetParam();
  std::vector<uint32_t> order;
  auto compressed =
      OutlierCodec::Compress(PointCloud(), {}, 0.02, mode, &order);
  ASSERT_TRUE(compressed.ok());
  auto decoded = OutlierCodec::Decompress(compressed.value(), mode);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

INSTANTIATE_TEST_SUITE_P(Modes, OutlierModeTest,
                         ::testing::Values(OutlierMode::kQuadtree,
                                           OutlierMode::kOctree,
                                           OutlierMode::kNone),
                         [](const auto& info) {
                           switch (info.param) {
                             case OutlierMode::kQuadtree:
                               return "Quadtree";
                             case OutlierMode::kOctree:
                               return "Octree";
                             default:
                               return "None";
                           }
                         });

TEST(OutlierCodecTest, QuadtreeBeatsNone) {
  // Table 2: compressing outliers clearly beats storing them raw.
  const PointCloud pc = ScatteredOutliers(2000, 2);
  std::vector<uint32_t> order;
  auto quad = OutlierCodec::Compress(pc, AllIndices(pc), 0.02,
                                     OutlierMode::kQuadtree, &order);
  auto none = OutlierCodec::Compress(pc, AllIndices(pc), 0.02,
                                     OutlierMode::kNone, &order);
  ASSERT_TRUE(quad.ok());
  ASSERT_TRUE(none.ok());
  EXPECT_LT(quad.value().size(), none.value().size());
}

TEST(OutlierCodecTest, QuadtreeNoWorseThanOctreeOnFlatScatters) {
  // Table 2: the quadtree+z scheme is slightly better than a 3D octree on
  // typical (flat, wide) outlier sets.
  const PointCloud pc = ScatteredOutliers(3000, 3);
  std::vector<uint32_t> order;
  auto quad = OutlierCodec::Compress(pc, AllIndices(pc), 0.02,
                                     OutlierMode::kQuadtree, &order);
  auto octree = OutlierCodec::Compress(pc, AllIndices(pc), 0.02,
                                       OutlierMode::kOctree, &order);
  ASSERT_TRUE(quad.ok());
  ASSERT_TRUE(octree.ok());
  EXPECT_LT(quad.value().size(),
            octree.value().size() * 115 / 100);
}

TEST(OutlierCodecTest, SubsetSelection) {
  const PointCloud pc = ScatteredOutliers(100, 4);
  std::vector<uint32_t> subset = {3, 17, 42, 99};
  std::vector<uint32_t> order;
  auto compressed = OutlierCodec::Compress(pc, subset, 0.02,
                                           OutlierMode::kQuadtree, &order);
  ASSERT_TRUE(compressed.ok());
  auto decoded =
      OutlierCodec::Decompress(compressed.value(), OutlierMode::kQuadtree);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 4u);
  // Order must be a permutation of the subset.
  std::vector<uint32_t> sorted_order = order;
  std::sort(sorted_order.begin(), sorted_order.end());
  EXPECT_EQ(sorted_order, subset);
}

TEST(OutlierCodecTest, DuplicatePositions) {
  PointCloud pc;
  for (int i = 0; i < 6; ++i) pc.Add(50, 50, 1);
  std::vector<uint32_t> order;
  auto compressed = OutlierCodec::Compress(pc, AllIndices(pc), 0.02,
                                           OutlierMode::kQuadtree, &order);
  ASSERT_TRUE(compressed.ok());
  auto decoded =
      OutlierCodec::Decompress(compressed.value(), OutlierMode::kQuadtree);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 6u);
}

TEST(OutlierCodecTest, TruncatedFails) {
  const PointCloud pc = ScatteredOutliers(200, 5);
  std::vector<uint32_t> order;
  auto compressed = OutlierCodec::Compress(pc, AllIndices(pc), 0.02,
                                           OutlierMode::kQuadtree, &order);
  ASSERT_TRUE(compressed.ok());
  ByteBuffer truncated;
  truncated.Append(compressed.value().data(), compressed.value().size() / 2);
  EXPECT_FALSE(
      OutlierCodec::Decompress(truncated, OutlierMode::kQuadtree).ok());
}

}  // namespace
}  // namespace dbgc
