// Tests for the SoA stage-buffer layer (common/point_soa.h): AoS <-> SoA
// transposes must preserve order and exact bit patterns (the hot-path
// kernels are pure layout changes, never value transforms), and
// Adopt/Release must move columns without copying. The stress suite
// hammers the clustering hot path — whose per-frame flat-array counters
// live in thread-local scratch — from many threads at once; it runs under
// TSan in scripts/check.sh alongside the other concurrency suites.

#include "common/point_soa.h"

#include <bit>
#include <cstdint>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/approx_clustering.h"
#include "cluster/flat_map.h"
#include "common/point_cloud.h"
#include "common/thread_pool.h"

namespace dbgc {
namespace {

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

std::vector<Point3> RandomPoints(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  std::vector<Point3> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back(Point3{dist(rng), dist(rng), dist(rng)});
  }
  return pts;
}

// --- AoS <-> SoA round trips ----------------------------------------------

TEST(PointSoATest, EmptyRoundTrip) {
  const PointSoA soa = PointSoA::FromPoints({});
  EXPECT_TRUE(soa.empty());
  EXPECT_EQ(soa.size(), 0u);
  EXPECT_TRUE(soa.ToPoints().empty());
}

TEST(PointSoATest, SinglePointRoundTrip) {
  const std::vector<Point3> one = {Point3{1.25, -2.5, 3.75}};
  const PointSoA soa = PointSoA::FromPoints(one);
  ASSERT_EQ(soa.size(), 1u);
  EXPECT_EQ(soa.x()[0], 1.25);
  EXPECT_EQ(soa.y()[0], -2.5);
  EXPECT_EQ(soa.z()[0], 3.75);
  const std::vector<Point3> back = soa.ToPoints();
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(Bits(back[0].x), Bits(one[0].x));
  EXPECT_EQ(Bits(back[0].y), Bits(one[0].y));
  EXPECT_EQ(Bits(back[0].z), Bits(one[0].z));
}

TEST(PointSoATest, RoundTripPreservesOrderAndBits) {
  for (const size_t n : {size_t{2}, size_t{17}, size_t{1024}, size_t{4097}}) {
    const std::vector<Point3> pts = RandomPoints(n, /*seed=*/n);
    const PointSoA soa = PointSoA::FromPoints(pts);
    ASSERT_EQ(soa.size(), n);
    const std::vector<Point3> back = soa.ToPoints();
    ASSERT_EQ(back.size(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(Bits(back[i].x), Bits(pts[i].x)) << "n=" << n << " i=" << i;
      ASSERT_EQ(Bits(back[i].y), Bits(pts[i].y)) << "n=" << n << " i=" << i;
      ASSERT_EQ(Bits(back[i].z), Bits(pts[i].z)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(PointSoATest, NonFiniteValuesRoundTripBitExact) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double payload_nan =
      std::bit_cast<double>(uint64_t{0x7FF8DEADBEEF0001ull});
  const std::vector<Point3> pts = {
      Point3{std::numeric_limits<double>::quiet_NaN(), kInf, -kInf},
      Point3{payload_nan, -0.0, std::numeric_limits<double>::denorm_min()},
      Point3{std::numeric_limits<double>::max(),
             -std::numeric_limits<double>::max(), 0.0},
  };
  const std::vector<Point3> back = PointSoA::FromPoints(pts).ToPoints();
  ASSERT_EQ(back.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(Bits(back[i].x), Bits(pts[i].x)) << "i=" << i;
    EXPECT_EQ(Bits(back[i].y), Bits(pts[i].y)) << "i=" << i;
    EXPECT_EQ(Bits(back[i].z), Bits(pts[i].z)) << "i=" << i;
  }
}

TEST(PointSoATest, FromPointCloudView) {
  PointCloud pc;
  pc.Add(1.0, 2.0, 3.0);
  pc.Add(-4.0, 5.5, -6.25);
  const PointSoA soa = PointSoA::FromPoints(pc.view());
  ASSERT_EQ(soa.size(), pc.size());
  for (size_t i = 0; i < pc.size(); ++i) {
    EXPECT_EQ(Bits(soa.PointAt(i).x), Bits(pc[i].x));
    EXPECT_EQ(Bits(soa.PointAt(i).y), Bits(pc[i].y));
    EXPECT_EQ(Bits(soa.PointAt(i).z), Bits(pc[i].z));
  }
}

// --- Adopt / Release ------------------------------------------------------

TEST(PointSoATest, AdoptDoesNotCopy) {
  std::vector<double> c0 = {1.0, 2.0};
  std::vector<double> c1 = {3.0, 4.0};
  std::vector<double> c2 = {5.0, 6.0};
  const double* p0 = c0.data();
  const double* p1 = c1.data();
  const double* p2 = c2.data();
  PointSoA soa = PointSoA::Adopt(std::move(c0), std::move(c1), std::move(c2));
  ASSERT_EQ(soa.size(), 2u);
  EXPECT_EQ(soa.x(), p0);
  EXPECT_EQ(soa.y(), p1);
  EXPECT_EQ(soa.z(), p2);
}

TEST(PointSoATest, AdoptReleaseRoundTrip) {
  const std::vector<Point3> pts = RandomPoints(64, /*seed=*/7);
  PointSoA soa = PointSoA::FromPoints(pts);
  const double* p0 = soa.x();
  PointSoA::Columns cols = std::move(soa).Release();
  EXPECT_TRUE(soa.empty());  // NOLINT(bugprone-use-after-move): documented
  EXPECT_EQ(cols.c0.data(), p0);
  ASSERT_EQ(cols.c0.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(Bits(cols.c0[i]), Bits(pts[i].x));
    EXPECT_EQ(Bits(cols.c1[i]), Bits(pts[i].y));
    EXPECT_EQ(Bits(cols.c2[i]), Bits(pts[i].z));
  }
  PointSoA again = PointSoA::Adopt(std::move(cols.c0), std::move(cols.c1),
                                   std::move(cols.c2));
  EXPECT_EQ(again.x(), p0);
  EXPECT_EQ(again.size(), pts.size());
}

TEST(PointSoATest, SphericalColumnsAliasCartesian) {
  PointSoA soa(1);
  soa.Set(0, SphericalPoint{0.5, -1.5, 42.0});
  EXPECT_EQ(soa.theta()[0], soa.x()[0]);
  EXPECT_EQ(soa.phi()[0], soa.y()[0]);
  EXPECT_EQ(soa.r()[0], soa.z()[0]);
  const SphericalPoint s = soa.SphericalAt(0);
  EXPECT_EQ(s.theta, 0.5);
  EXPECT_EQ(s.phi, -1.5);
  EXPECT_EQ(s.r, 42.0);
}

// --- FlatCountMap (the clustering counters' open-addressing map) ----------

TEST(FlatCountMapTest, CountsGrowthAndZeroKey) {
  FlatCountMap map(/*expected=*/4);
  map.Add(0, 3);  // The zero key lives in a dedicated side slot.
  for (uint64_t k = 1; k <= 1000; ++k) map.Add(k * 0x9E3779B97F4A7C15ull, 2);
  EXPECT_EQ(map.Get(0), 3u);
  for (uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_EQ(map.Get(k * 0x9E3779B97F4A7C15ull), 2u) << "k=" << k;
  }
  EXPECT_EQ(map.Get(12345), 0u);
}

// --- Concurrent clustering stress (run under TSan in scripts/check.sh) ----

// A scene with a decided density split: a tight slab that clears minPts
// and a wide scatter that cannot.
std::vector<Point3> MixedDensityScene() {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> tight(0.0, 0.5);
  std::uniform_real_distribution<double> wide(-50.0, 50.0);
  std::vector<Point3> pts;
  pts.reserve(7000);
  for (int i = 0; i < 5000; ++i) {
    pts.push_back(Point3{tight(rng), tight(rng), tight(rng)});
  }
  for (int i = 0; i < 2000; ++i) {
    pts.push_back(Point3{wide(rng), wide(rng), wide(rng)});
  }
  return pts;
}

TEST(PointSoAStressTest, ConcurrentClusteringCountersStayIsolated) {
  const std::vector<Point3> pts = MixedDensityScene();
  const ClusteringParams params = ClusteringParams::FromErrorBound(0.02);
  const ClusteringResult reference = ApproxClustering(pts, params);
  ASSERT_GT(reference.NumDense(), 0u);
  ASSERT_LT(reference.NumDense(), pts.size());

  // Many frames in flight at once: every call reuses its own thread's
  // scratch buffers, and some calls additionally fan their key derivation
  // out over a shared pool. Each result must match the serial reference
  // exactly — any cross-thread bleed in the flat-array counters flips a
  // label (and trips TSan in the sanitized run).
  ThreadPool pool(4);
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 4;
  std::vector<int> mismatches(kThreads, 0);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int it = 0; it < kItersPerThread; ++it) {
          Parallelism par;
          if ((t + it) % 2 == 1) {
            par.pool = &pool;
            par.max_threads = 2;
          }
          const ClusteringResult got = ApproxClustering(pts, params, par);
          if (got.is_dense != reference.is_dense) ++mismatches[t];
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace dbgc
