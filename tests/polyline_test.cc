// Tests for polyline organization (Algorithm 1) and the consensus
// reference polyline (Algorithm 2).

#include <gtest/gtest.h>

#include <cmath>

#include "common/point_soa.h"
#include "common/rng.h"
#include "core/polyline.h"
#include "core/polyline_organizer.h"
#include "core/reference_polyline.h"
#include "lidar/spherical.h"

namespace dbgc {
namespace {

// Builds parallel arrays for n points laid out on `rings` horizontal scan
// rings with `per_ring` samples each, in spherical space.
struct TestPoints {
  PointSoA role;
  std::vector<Point3> cart;
  std::vector<QPoint> quantized;
  std::vector<uint32_t> members;  // Identity mapping into `cart`.

  void Add(const SphericalPoint& s, const QPoint& q) {
    role.PushBack(s);
    cart.push_back(SphericalToCartesian(s));
    quantized.push_back(q);
    members.push_back(static_cast<uint32_t>(members.size()));
  }
};

TestPoints MakeRings(int rings, int per_ring, double u_theta, double u_phi,
                     double jitter, uint64_t seed) {
  TestPoints t;
  Rng rng(seed);
  for (int w = 0; w < rings; ++w) {
    for (int h = 0; h < per_ring; ++h) {
      SphericalPoint s;
      s.theta = -1.0 + h * u_theta + rng.NextGaussian() * jitter * u_theta;
      s.phi = -0.1 - w * u_phi + rng.NextGaussian() * jitter * u_phi;
      s.r = 10.0 + 0.05 * h;
      t.Add(s, QPoint{static_cast<int64_t>(std::llround(s.theta / 1e-4)),
                      static_cast<int64_t>(std::llround(s.phi / 1e-4)),
                      static_cast<int64_t>(std::llround(s.r / 0.04))});
    }
  }
  return t;
}

TEST(OrganizerTest, EmptyInput) {
  const OrganizeResult r = OrganizeSparsePoints({}, {}, {}, {}, 0.01, 0.01, 2);
  EXPECT_TRUE(r.polylines.empty());
  EXPECT_TRUE(r.outliers.empty());
}

TEST(OrganizerTest, SingleRingBecomesOnePolyline) {
  const double u_theta = 0.003, u_phi = 0.0073;
  const TestPoints t = MakeRings(1, 50, u_theta, u_phi, 0.05, 1);
  const OrganizeResult r =
      OrganizeSparsePoints(t.role, t.cart, t.members, t.quantized, u_theta, u_phi, 2);
  ASSERT_EQ(r.polylines.size(), 1u);
  EXPECT_EQ(r.polylines[0].size(), 50u);
  EXPECT_TRUE(r.outliers.empty());
  // Points ordered by ascending theta.
  const Polyline& line = r.polylines[0];
  for (size_t i = 1; i < line.size(); ++i) {
    EXPECT_GE(line.points[i].theta, line.points[i - 1].theta);
  }
}

TEST(OrganizerTest, MultipleRingsSeparate) {
  const double u_theta = 0.003, u_phi = 0.0073;
  const TestPoints t = MakeRings(4, 40, u_theta, u_phi, 0.05, 2);
  const OrganizeResult r =
      OrganizeSparsePoints(t.role, t.cart, t.members, t.quantized, u_theta, u_phi, 2);
  EXPECT_EQ(r.polylines.size(), 4u);
  // Sorted by polar angle ascending.
  for (size_t i = 1; i < r.polylines.size(); ++i) {
    EXPECT_GE(r.polylines[i].PolarAngle(), r.polylines[i - 1].PolarAngle());
  }
}

TEST(OrganizerTest, EveryPointAppearsExactlyOnce) {
  const double u_theta = 0.003, u_phi = 0.0073;
  const TestPoints t = MakeRings(6, 30, u_theta, u_phi, 0.3, 3);
  const OrganizeResult r =
      OrganizeSparsePoints(t.role, t.cart, t.members, t.quantized, u_theta, u_phi, 2);
  std::vector<int> seen(t.role.size(), 0);
  for (const Polyline& line : r.polylines) {
    EXPECT_EQ(line.points.size(), line.source_indices.size());
    for (uint32_t idx : line.source_indices) ++seen[idx];
  }
  for (uint32_t idx : r.outliers) ++seen[idx];
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1) << i;
}

TEST(OrganizerTest, GapsBreakPolylines) {
  // Two far-separated azimuthal segments on one ring cannot connect:
  // the extension window is only 2 u_theta.
  const double u_theta = 0.003, u_phi = 0.0073;
  TestPoints t = MakeRings(1, 20, u_theta, u_phi, 0.02, 4);
  const TestPoints shifted = MakeRings(1, 20, u_theta, u_phi, 0.02, 5);
  for (size_t i = 0; i < shifted.role.size(); ++i) {
    SphericalPoint s = shifted.role.SphericalAt(i);
    s.theta += 1.5;  // Far to the right of the first segment.
    t.Add(s, QPoint{shifted.quantized[i].theta + 15000, shifted.quantized[i].phi,
                    shifted.quantized[i].r});
  }
  const OrganizeResult r =
      OrganizeSparsePoints(t.role, t.cart, t.members, t.quantized, u_theta, u_phi, 2);
  EXPECT_EQ(r.polylines.size(), 2u);
}

TEST(OrganizerTest, IsolatedPointsBecomeOutliers) {
  const double u_theta = 0.003, u_phi = 0.0073;
  TestPoints t = MakeRings(1, 30, u_theta, u_phi, 0.02, 6);
  // A lone point far above the ring.
  SphericalPoint lone{0.0, 0.5, 20.0};
  t.Add(lone, QPoint{0, 5000, 500});
  const OrganizeResult r =
      OrganizeSparsePoints(t.role, t.cart, t.members, t.quantized, u_theta, u_phi, 2);
  ASSERT_EQ(r.outliers.size(), 1u);
  EXPECT_EQ(r.outliers[0], 30u);
}

TEST(OrganizerTest, MinLengthControlsOutliers) {
  const double u_theta = 0.003, u_phi = 0.0073;
  const TestPoints t = MakeRings(1, 3, u_theta, u_phi, 0.02, 7);
  const OrganizeResult keep =
      OrganizeSparsePoints(t.role, t.cart, t.members, t.quantized, u_theta, u_phi, 2);
  EXPECT_EQ(keep.polylines.size(), 1u);
  const OrganizeResult drop =
      OrganizeSparsePoints(t.role, t.cart, t.members, t.quantized, u_theta, u_phi, 4);
  EXPECT_TRUE(drop.polylines.empty());
  EXPECT_EQ(drop.outliers.size(), 3u);
}

Polyline MakeLine(std::vector<std::pair<int64_t, int64_t>> theta_r,
                  int64_t phi) {
  Polyline line;
  for (auto [theta, r] : theta_r) {
    line.points.push_back(QPoint{theta, phi, r});
  }
  return line;
}

TEST(ConsensusLineTest, EmptyForFirstLine) {
  std::vector<Polyline> lines;
  lines.push_back(MakeLine({{0, 10}, {5, 11}}, 0));
  const ConsensusLine c = ConsensusLine::Build(lines, 0, 100);
  EXPECT_TRUE(c.empty());
}

TEST(ConsensusLineTest, SingleReferenceCopied) {
  std::vector<Polyline> lines;
  lines.push_back(MakeLine({{0, 10}, {5, 11}, {9, 12}}, 0));
  lines.push_back(MakeLine({{1, 10}, {6, 11}}, 2));
  const ConsensusLine c = ConsensusLine::Build(lines, 1, 100);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.at(0).theta, 0);
  EXPECT_EQ(c.at(2).r, 12);
}

TEST(ConsensusLineTest, PhiThresholdFilters) {
  std::vector<Polyline> lines;
  lines.push_back(MakeLine({{0, 10}}, 0));
  lines.push_back(MakeLine({{0, 20}}, 50));
  lines.push_back(MakeLine({{0, 30}}, 60));
  // For line 2, th_phi=15 admits only line 1 (diff 10), not line 0.
  const ConsensusLine c = ConsensusLine::Build(lines, 2, 15);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.at(0).r, 20);
}

TEST(ConsensusLineTest, LaterLinesOverwriteOverlap) {
  std::vector<Polyline> lines;
  lines.push_back(MakeLine({{0, 1}, {10, 2}, {20, 3}, {30, 4}}, 0));
  lines.push_back(MakeLine({{12, 100}, {18, 101}}, 1));
  lines.push_back(MakeLine({{0, 0}}, 2));
  const ConsensusLine c = ConsensusLine::Build(lines, 2, 100);
  // Line 1's span (12..18) replaces line 0's interior points in (10, 20)...
  // id_left = leftmost > 12 -> theta 20? No: > head(12) -> theta 20 is >12,
  // but theta 10 < 12 stays. Replaced range: points with theta in
  // (12, 18) exclusive per Algorithm 2's bounds -> none here, so we get
  // an interleaved, theta-sorted sequence.
  ASSERT_GE(c.size(), 5u);
  for (size_t i = 1; i < c.size(); ++i) {
    EXPECT_GE(c.at(i).theta, c.at(i - 1).theta);
  }
}

TEST(ConsensusLineTest, DisjointLinesConcatenate) {
  std::vector<Polyline> lines;
  lines.push_back(MakeLine({{0, 1}, {5, 2}}, 0));
  lines.push_back(MakeLine({{10, 3}, {15, 4}}, 1));
  lines.push_back(MakeLine({{0, 0}}, 2));
  const ConsensusLine c = ConsensusLine::Build(lines, 2, 100);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.at(0).r, 1);
  EXPECT_EQ(c.at(3).r, 4);
}

TEST(ConsensusLineTest, Lookups) {
  std::vector<Polyline> lines;
  lines.push_back(MakeLine({{0, 1}, {10, 2}, {20, 3}}, 0));
  lines.push_back(MakeLine({{0, 0}}, 1));
  const ConsensusLine c = ConsensusLine::Build(lines, 1, 100);
  EXPECT_EQ(c.RightmostBelow(15), 1);
  EXPECT_EQ(c.RightmostBelow(0), -1);
  EXPECT_EQ(c.RightmostBelow(1000), 2);
  EXPECT_EQ(c.LeftmostAtOrAbove(10), 1);
  EXPECT_EQ(c.LeftmostAtOrAbove(11), 2);
  EXPECT_EQ(c.LeftmostAtOrAbove(21), -1);
}

}  // namespace
}  // namespace dbgc
