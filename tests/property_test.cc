// Randomized property tests cutting across modules: invariants that must
// hold for arbitrary inputs, checked against brute-force oracles.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "cluster/flat_map.h"
#include "common/rng.h"
#include "core/dbgc_codec.h"
#include "core/error_metrics.h"
#include "core/polyline.h"
#include "core/reference_polyline.h"
#include "encoding/quantizer.h"
#include "lz/deflate.h"
#include "spatial/octree.h"

namespace dbgc {
namespace {

TEST(FlatCountMapProperty, MatchesUnorderedMap) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    FlatCountMap flat(16);  // Small initial capacity forces growth.
    std::unordered_map<uint64_t, uint32_t> reference;
    for (int op = 0; op < 5000; ++op) {
      // Narrow key space so collisions and repeats are common.
      const uint64_t key = rng.NextBounded(512) * 0x9E3779B97F4A7C15ULL;
      const uint32_t delta = static_cast<uint32_t>(rng.NextBounded(5)) + 1;
      flat.Add(key, delta);
      reference[key] += delta;
    }
    ASSERT_EQ(flat.size(), reference.size());
    for (const auto& [key, count] : reference) {
      ASSERT_EQ(flat.Get(key), count);
      ASSERT_TRUE(flat.Contains(key));
    }
    ASSERT_EQ(flat.Get(0xDEAD0000BEEFULL), 0u);
  }
}

TEST(FlatCountMapProperty, ZeroKeyHandled) {
  FlatCountMap flat(4);
  flat.Add(0, 7);
  EXPECT_EQ(flat.Get(0), 7u);
  EXPECT_TRUE(flat.Contains(0));
}

TEST(ConsensusLineProperty, AlwaysSortedAndQueriesConsistent) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    // Random stack of polylines with overlapping azimuthal spans.
    std::vector<Polyline> lines;
    const int num_lines = 2 + static_cast<int>(rng.NextBounded(8));
    for (int l = 0; l < num_lines; ++l) {
      Polyline line;
      int64_t theta = static_cast<int64_t>(rng.NextBounded(200)) - 100;
      const int points = 1 + static_cast<int>(rng.NextBounded(20));
      for (int p = 0; p < points; ++p) {
        line.points.push_back(
            QPoint{theta, l * 10, static_cast<int64_t>(rng.NextBounded(500))});
        theta += 1 + static_cast<int64_t>(rng.NextBounded(15));
      }
      lines.push_back(std::move(line));
    }
    const ConsensusLine consensus = ConsensusLine::Build(
        lines, lines.size() - 1, /*th_phi=*/1000);
    // Sorted by theta.
    for (size_t i = 1; i < consensus.size(); ++i) {
      ASSERT_GE(consensus.at(i).theta, consensus.at(i - 1).theta);
    }
    // Query consistency against the sorted sequence.
    for (int64_t t = -120; t <= 400; t += 17) {
      const int below = consensus.RightmostBelow(t);
      const int at_or_above = consensus.LeftmostAtOrAbove(t);
      if (below >= 0) {
        ASSERT_LT(consensus.at(below).theta, t);
      }
      if (below + 1 < static_cast<int>(consensus.size())) {
        ASSERT_GE(consensus.at(below + 1).theta, t);
      }
      if (at_or_above >= 0) {
        ASSERT_GE(consensus.at(at_or_above).theta, t);
      }
    }
  }
}

TEST(OctreeProperty, RebuildFromExtractedIsIdempotent) {
  Rng rng(3);
  PointCloud pc;
  for (int i = 0; i < 3000; ++i) {
    pc.Add(rng.NextRange(-20, 20), rng.NextRange(-20, 20),
           rng.NextRange(-2, 5));
  }
  auto tree1 = Octree::Build(pc, 0.04);
  ASSERT_TRUE(tree1.ok());
  const PointCloud extracted = Octree::ExtractPoints(tree1.value());
  auto tree2 = Octree::BuildWithRoot(extracted, tree1.value().root, 0.04);
  ASSERT_TRUE(tree2.ok());
  // Same leaves, same counts: quantization is a projection.
  EXPECT_EQ(Octree::LeafKeys(tree1.value()), Octree::LeafKeys(tree2.value()));
  EXPECT_EQ(tree1.value().leaf_counts, tree2.value().leaf_counts);
}

TEST(QuantizerProperty, IdempotentOnReconstructedValues) {
  Rng rng(4);
  const Quantizer q(0.013);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextRange(-1000, 1000);
    const int64_t once = q.Quantize(v);
    const int64_t twice = q.Quantize(q.Reconstruct(once));
    EXPECT_EQ(once, twice);
  }
}

TEST(DeflateProperty, RoundTripOnPathologicalInputs) {
  // All zeros, all distinct, sawtooth, and double-compressed data.
  std::vector<std::vector<uint8_t>> inputs;
  inputs.emplace_back(50000, 0);
  std::vector<uint8_t> distinct(256);
  for (int i = 0; i < 256; ++i) distinct[i] = static_cast<uint8_t>(i);
  inputs.push_back(distinct);
  std::vector<uint8_t> saw(30000);
  for (size_t i = 0; i < saw.size(); ++i) saw[i] = static_cast<uint8_t>(i % 7);
  inputs.push_back(saw);
  inputs.push_back(Deflate::Compress(saw).bytes());  // Compress compressed.
  inputs.emplace_back(1, 0xFF);
  for (const auto& data : inputs) {
    const ByteBuffer compressed = Deflate::Compress(data);
    std::vector<uint8_t> out;
    ASSERT_TRUE(Deflate::Decompress(compressed, &out).ok());
    ASSERT_EQ(out, data);
  }
}

class DbgcAdversarialCloud
    : public ::testing::TestWithParam<const char*> {};

PointCloud MakeAdversarial(const std::string& kind) {
  PointCloud pc;
  Rng rng(7);
  if (kind == "collinear") {
    for (int i = 0; i < 2000; ++i) pc.Add(0.01 * i, 0.005 * i, 1.0);
  } else if (kind == "grid") {
    for (int x = 0; x < 20; ++x) {
      for (int y = 0; y < 20; ++y) {
        for (int z = 0; z < 5; ++z) pc.Add(x * 0.5, y * 0.5, z * 0.5);
      }
    }
  } else if (kind == "same_point") {
    for (int i = 0; i < 500; ++i) pc.Add(3.25, -1.5, 0.75);
  } else if (kind == "extreme_range") {
    for (int i = 0; i < 300; ++i) {
      pc.Add(rng.NextRange(-0.1, 0.1), rng.NextRange(-0.1, 0.1),
             rng.NextRange(-0.1, 0.1));
    }
    for (int i = 0; i < 300; ++i) {
      pc.Add(rng.NextRange(900, 1000), rng.NextRange(900, 1000),
             rng.NextRange(-5, 5));
    }
  } else if (kind == "vertical_wall") {
    for (int i = 0; i < 50; ++i) {
      for (int j = 0; j < 50; ++j) pc.Add(10.0, i * 0.05 - 1.0, j * 0.05);
    }
  } else if (kind == "single_ring") {
    for (int i = 0; i < 3000; ++i) {
      const double a = 2 * M_PI * i / 3000;
      pc.Add(15 * std::cos(a), 15 * std::sin(a), -1.7);
    }
  }
  return pc;
}

TEST_P(DbgcAdversarialCloud, RoundTripsWithinBound) {
  const PointCloud pc = MakeAdversarial(GetParam());
  DbgcOptions options;
  options.q_xyz = 0.02;
  const DbgcCodec codec(options);
  CompressStats info;
  info.record_point_mapping = true;
  CompressParams info_params;
  info_params.q_xyz = codec.options().q_xyz;
  info_params.info = &info;
  auto compressed = codec.Compress(pc, info_params);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), pc.size());
  auto stats = MappedError(pc, decoded.value(), info.point_mapping);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LE(stats.value().max_euclidean, std::sqrt(3.0) * 0.02 * (1 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Clouds, DbgcAdversarialCloud,
                         ::testing::Values("collinear", "grid", "same_point",
                                           "extreme_range", "vertical_wall",
                                           "single_ring"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(ErrorMetricsProperty, MappedErrorDetectsBadMappings) {
  PointCloud a, b;
  a.Add(0, 0, 0);
  a.Add(1, 0, 0);
  b.Add(1, 0, 0);
  b.Add(0, 0, 0);
  // Correct permutation: zero error.
  auto ok = MappedError(a, b, {1, 0});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().max_euclidean, 0.0);
  // Identity mapping: unit error.
  auto swapped = MappedError(a, b, {0, 1});
  ASSERT_TRUE(swapped.ok());
  EXPECT_DOUBLE_EQ(swapped.value().max_euclidean, 1.0);
  // Not a permutation.
  EXPECT_FALSE(MappedError(a, b, {0, 0}).ok());
  // Wrong length.
  EXPECT_FALSE(MappedError(a, b, {0}).ok());
}

TEST(ErrorMetricsProperty, NearestNeighborIsSymmetricAndZeroOnEqual) {
  Rng rng(8);
  PointCloud pc;
  for (int i = 0; i < 500; ++i) {
    pc.Add(rng.NextRange(-5, 5), rng.NextRange(-5, 5), rng.NextRange(-5, 5));
  }
  const ErrorStats self = NearestNeighborError(pc, pc);
  EXPECT_EQ(self.max_euclidean, 0.0);
  PointCloud shifted;
  for (const Point3& p : pc) shifted.Add(p + Point3{0.01, 0, 0});
  const ErrorStats ab = NearestNeighborError(pc, shifted);
  const ErrorStats ba = NearestNeighborError(shifted, pc);
  EXPECT_DOUBLE_EQ(ab.max_euclidean, ba.max_euclidean);
}

}  // namespace
}  // namespace dbgc
