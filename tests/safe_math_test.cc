// Exhaustive edge-case tests for the checked-arithmetic and bounded-
// allocation contract layer (src/common/safe_math.h, src/common/
// contracts.h) that every decoder routes untrusted size fields through.

#include "common/safe_math.h"

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "common/point_cloud.h"

namespace dbgc {
namespace {

constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();
constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();
constexpr uint32_t kU32Max = std::numeric_limits<uint32_t>::max();

TEST(CheckedAddTest, Int64Boundaries) {
  EXPECT_EQ(CheckedAdd<int64_t>(kI64Max, 0), kI64Max);
  EXPECT_EQ(CheckedAdd<int64_t>(kI64Max - 1, 1), kI64Max);
  EXPECT_FALSE(CheckedAdd<int64_t>(kI64Max, 1).has_value());
  EXPECT_EQ(CheckedAdd<int64_t>(kI64Min, 0), kI64Min);
  EXPECT_FALSE(CheckedAdd<int64_t>(kI64Min, -1).has_value());
  EXPECT_EQ(CheckedAdd<int64_t>(kI64Max, kI64Min), -1);
}

TEST(CheckedAddTest, Uint32Boundaries) {
  EXPECT_EQ(CheckedAdd<uint32_t>(kU32Max, 0u), kU32Max);
  EXPECT_EQ(CheckedAdd<uint32_t>(kU32Max - 1, 1u), kU32Max);
  EXPECT_FALSE(CheckedAdd<uint32_t>(kU32Max, 1u).has_value());
  EXPECT_FALSE(CheckedAdd<uint32_t>(kU32Max, kU32Max).has_value());
}

TEST(CheckedAddTest, ZeroOperands) {
  EXPECT_EQ(CheckedAdd<uint64_t>(0, 0), 0u);
  EXPECT_EQ(CheckedAdd<int64_t>(0, 0), 0);
  EXPECT_EQ(CheckedAdd<uint64_t>(0, kU64Max), kU64Max);
}

TEST(CheckedSubTest, Boundaries) {
  EXPECT_EQ(CheckedSub<uint64_t>(0, 0), 0u);
  EXPECT_FALSE(CheckedSub<uint64_t>(0, 1).has_value());
  EXPECT_EQ(CheckedSub<int64_t>(kI64Min, 0), kI64Min);
  EXPECT_FALSE(CheckedSub<int64_t>(kI64Min, 1).has_value());
  EXPECT_FALSE(CheckedSub<int64_t>(kI64Max, -1).has_value());
  EXPECT_EQ(CheckedSub<int64_t>(kI64Max, kI64Max), 0);
}

TEST(CheckedMulTest, Int64Boundaries) {
  EXPECT_EQ(CheckedMul<int64_t>(kI64Max, 1), kI64Max);
  EXPECT_FALSE(CheckedMul<int64_t>(kI64Max, 2).has_value());
  EXPECT_FALSE(CheckedMul<int64_t>(kI64Min, -1).has_value());
  EXPECT_EQ(CheckedMul<int64_t>(kI64Min, 1), kI64Min);
  // The classic decoder bug: (2^32) * (2^32) wraps to 0 in uint64.
  EXPECT_FALSE(
      CheckedMul<uint64_t>(1ULL << 32, 1ULL << 32).has_value());
}

TEST(CheckedMulTest, Uint32Boundaries) {
  EXPECT_EQ(CheckedMul<uint32_t>(kU32Max, 1u), kU32Max);
  EXPECT_FALSE(CheckedMul<uint32_t>(kU32Max, 2u).has_value());
  EXPECT_EQ(CheckedMul<uint32_t>(1u << 16, 1u << 15), 1u << 31);
  EXPECT_FALSE(CheckedMul<uint32_t>(1u << 16, 1u << 16).has_value());
}

TEST(CheckedMulTest, ZeroOperands) {
  EXPECT_EQ(CheckedMul<uint64_t>(0, kU64Max), 0u);
  EXPECT_EQ(CheckedMul<uint64_t>(kU64Max, 0), 0u);
  EXPECT_EQ(CheckedMul<int64_t>(0, kI64Min), 0);
}

TEST(CheckedShlTest, ShiftByWidthRejected) {
  EXPECT_FALSE(CheckedShl<uint64_t>(1, 64).has_value());
  EXPECT_FALSE(CheckedShl<uint32_t>(1, 32).has_value());
  EXPECT_FALSE(CheckedShl<int64_t>(1, 64).has_value());
  EXPECT_FALSE(CheckedShl<uint64_t>(0, 64).has_value());  // Even for v = 0.
}

TEST(CheckedShlTest, LostBitsRejected) {
  EXPECT_EQ(CheckedShl<uint64_t>(1, 63), 1ULL << 63);
  EXPECT_FALSE(CheckedShl<uint64_t>(2, 63).has_value());
  EXPECT_FALSE(CheckedShl<uint64_t>(kU64Max, 1).has_value());
  EXPECT_EQ(CheckedShl<uint32_t>(1, 31), 1u << 31);
  EXPECT_FALSE(CheckedShl<uint32_t>(3, 31).has_value());
}

TEST(CheckedShlTest, SignedRules) {
  EXPECT_FALSE(CheckedShl<int64_t>(-1, 1).has_value());  // Negative v is UB.
  EXPECT_EQ(CheckedShl<int64_t>(1, 62), int64_t{1} << 62);
  EXPECT_FALSE(CheckedShl<int64_t>(1, 63).has_value());  // Sign bit.
}

TEST(CheckedShlTest, ZeroOperands) {
  EXPECT_EQ(CheckedShl<uint64_t>(0, 0), 0u);
  EXPECT_EQ(CheckedShl<uint64_t>(0, 63), 0u);
  EXPECT_EQ(CheckedShl<uint64_t>(5, 0), 5u);
}

TEST(CheckedCastTest, NarrowingAndSign) {
  EXPECT_EQ(CheckedCast<uint32_t>(uint64_t{kU32Max}), kU32Max);
  EXPECT_FALSE(CheckedCast<uint32_t>(uint64_t{kU32Max} + 1).has_value());
  EXPECT_FALSE(CheckedCast<uint64_t>(int64_t{-1}).has_value());
  EXPECT_EQ(CheckedCast<int64_t>(uint64_t{1} << 62), int64_t{1} << 62);
  EXPECT_FALSE(CheckedCast<int64_t>(kU64Max).has_value());
  EXPECT_EQ(CheckedCast<int8_t>(int64_t{-128}), int8_t{-128});
  EXPECT_FALSE(CheckedCast<int8_t>(int64_t{128}).has_value());
}

// ---------------------------------------------------------------------------
// BoundedAlloc: allocations capped against the stream budget.

TEST(BoundedAllocTest, FitsDividesInsteadOfMultiplying) {
  const BoundedAlloc alloc(/*stream_bytes=*/120);
  EXPECT_TRUE(alloc.Fits(10, 12));
  EXPECT_FALSE(alloc.Fits(11, 12));
  // count * min_bytes_each would wrap to a small value here; the divide
  // form must still reject.
  EXPECT_FALSE(alloc.Fits(kU64Max / 2 + 1, 2));
}

TEST(BoundedAllocTest, ZeroMinBytesChecksCapOnly) {
  const BoundedAlloc alloc(/*stream_bytes=*/0);
  EXPECT_TRUE(alloc.Fits(kMaxDecodedElements, 0));
  EXPECT_FALSE(alloc.Fits(kMaxDecodedElements + 1, 0));
}

TEST(BoundedAllocTest, ReserveRejectsOversizedCount) {
  const BoundedAlloc alloc(/*stream_bytes=*/24);
  std::vector<uint64_t> v;
  EXPECT_TRUE(alloc.Reserve(&v, 3, 8, "test").ok());
  EXPECT_GE(v.capacity(), 3u);
  const Status s = alloc.Reserve(&v, 4, 8, "test");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(BoundedAllocTest, ReserveWorksWithPointCloud) {
  const BoundedAlloc alloc(/*stream_bytes=*/120);
  PointCloud pc;
  EXPECT_TRUE(alloc.Reserve(&pc, 10, 12, "points").ok());
  EXPECT_FALSE(alloc.Reserve(&pc, 11, 12, "points").ok());
}

TEST(BoundedAllocTest, ResizeRejectsAndValueInitializes) {
  const BoundedAlloc alloc(/*stream_bytes=*/16);
  std::vector<uint8_t> v;
  EXPECT_TRUE(alloc.Resize(&v, 16, 1, "bytes").ok());
  EXPECT_EQ(v.size(), 16u);
  EXPECT_EQ(v[15], 0u);
  EXPECT_FALSE(alloc.Resize(&v, 17, 1, "bytes").ok());
}

TEST(BoundedAllocTest, ReserveSpeculativeClampsButAccepts) {
  const BoundedAlloc alloc(/*stream_bytes=*/4);  // Tiny stream...
  std::vector<uint32_t> v;
  // ...may still declare many entropy-coded elements, up to the cap.
  EXPECT_TRUE(
      alloc.ReserveSpeculative(&v, kMaxDecodedElements, "symbols").ok());
  EXPECT_LE(v.capacity(), 2 * kSpeculativeReserveLimit);
  const Status s =
      alloc.ReserveSpeculative(&v, kMaxDecodedElements + 1, "symbols");
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(BoundedAllocTest, ExplicitCapOverridesDefault) {
  const BoundedAlloc alloc(/*stream_bytes=*/kU64Max, /*cap=*/100);
  EXPECT_TRUE(alloc.Fits(100, 1));
  EXPECT_FALSE(alloc.Fits(101, 1));
}

TEST(BoundedAllocTest, CheckMatchesFits) {
  const BoundedAlloc alloc(/*stream_bytes=*/10);
  EXPECT_TRUE(alloc.Check(10, 1, "x").ok());
  EXPECT_TRUE(alloc.Check(11, 1, "x").code() == StatusCode::kCorruption);
}

// DBGC_BOUND returns Corruption from the enclosing function iff the value
// exceeds the limit.
Status BoundHelper(uint64_t value, uint64_t limit) {
  DBGC_BOUND(value, limit, "bound helper");
  return Status::OK();
}

TEST(DbgcBoundTest, RejectsAboveLimitOnly) {
  EXPECT_TRUE(BoundHelper(0, 0).ok());
  EXPECT_TRUE(BoundHelper(10, 10).ok());
  EXPECT_TRUE(BoundHelper(11, 10).code() == StatusCode::kCorruption);
  EXPECT_TRUE(BoundHelper(kU64Max, kU64Max).ok());
  EXPECT_TRUE(BoundHelper(kU64Max, kU64Max - 1).code() == StatusCode::kCorruption);
}

}  // namespace
}  // namespace dbgc
