// Tests for the sparse coordinate codec (Section 3.5, Steps 1-9): exact
// round trip of quantized polylines, including the radial reference replay.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/coordinate_converter.h"
#include "core/polyline.h"
#include "core/polyline_organizer.h"
#include "core/sparse_codec.h"
#include "lidar/scene_generator.h"
#include "lidar/spherical.h"

namespace dbgc {
namespace {

SparseGroupParams DefaultParams(bool radial = true) {
  SparseGroupParams p;
  p.step_theta = 2e-4;
  p.step_phi = 2e-4;
  p.step_r = 0.04;
  p.th_r = 50;   // 2 m in 0.04 m units.
  p.th_phi = 80;
  p.radial_optimized = radial;
  return p;
}

std::vector<Polyline> SyntheticLines(int num_lines, int points_per_line,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Polyline> lines;
  for (int l = 0; l < num_lines; ++l) {
    Polyline line;
    int64_t theta = static_cast<int64_t>(rng.NextBounded(100));
    int64_t r = 200 + static_cast<int64_t>(rng.NextBounded(400));
    const int64_t phi = l * 40 + static_cast<int64_t>(rng.NextBounded(8));
    for (int p = 0; p < points_per_line; ++p) {
      line.points.push_back(QPoint{theta, phi + static_cast<int64_t>(
                                               rng.NextBounded(5)) - 2,
                                   r});
      theta += 10 + static_cast<int64_t>(rng.NextBounded(10));
      r += static_cast<int64_t>(rng.NextBounded(21)) - 10;
      if (rng.NextBool(0.05)) r += 300;  // Object boundary jump.
      if (r < 1) r = 1;
    }
    lines.push_back(std::move(line));
  }
  // The codec requires polyline sort order (phi, then head theta).
  std::sort(lines.begin(), lines.end(), [](const Polyline& a,
                                           const Polyline& b) {
    if (a.PolarAngle() != b.PolarAngle()) return a.PolarAngle() < b.PolarAngle();
    return a.front().theta < b.front().theta;
  });
  return lines;
}

void ExpectLinesEqual(const std::vector<Polyline>& a,
                      const std::vector<Polyline>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t l = 0; l < a.size(); ++l) {
    ASSERT_EQ(a[l].size(), b[l].size()) << "line " << l;
    for (size_t p = 0; p < a[l].size(); ++p) {
      ASSERT_EQ(a[l].points[p].theta, b[l].points[p].theta)
          << "line " << l << " point " << p;
      ASSERT_EQ(a[l].points[p].phi, b[l].points[p].phi)
          << "line " << l << " point " << p;
      ASSERT_EQ(a[l].points[p].r, b[l].points[p].r)
          << "line " << l << " point " << p;
    }
  }
}

TEST(SparseCodecTest, EmptyGroup) {
  const SparseGroupParams params = DefaultParams();
  const ByteBuffer buf = SparseCodec::EncodeGroup({}, params);
  std::vector<Polyline> decoded;
  ASSERT_TRUE(SparseCodec::DecodeGroup(buf, params, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(SparseCodecTest, SingleLineRoundTrip) {
  const SparseGroupParams params = DefaultParams();
  const auto lines = SyntheticLines(1, 50, 1);
  const ByteBuffer buf = SparseCodec::EncodeGroup(lines, params);
  std::vector<Polyline> decoded;
  ASSERT_TRUE(SparseCodec::DecodeGroup(buf, params, &decoded).ok());
  ExpectLinesEqual(lines, decoded);
}

class SparseRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(SparseRoundTrip, Exact) {
  const auto [num_lines, points_per_line, radial] = GetParam();
  const SparseGroupParams params = DefaultParams(radial);
  const auto lines =
      SyntheticLines(num_lines, points_per_line,
                     static_cast<uint64_t>(num_lines * 1000 + points_per_line));
  const ByteBuffer buf = SparseCodec::EncodeGroup(lines, params);
  std::vector<Polyline> decoded;
  ASSERT_TRUE(SparseCodec::DecodeGroup(buf, params, &decoded).ok());
  ExpectLinesEqual(lines, decoded);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SparseRoundTrip,
    ::testing::Combine(::testing::Values(1, 5, 40),
                       ::testing::Values(2, 10, 120),
                       ::testing::Bool()));

TEST(SparseCodecTest, SingletonLines) {
  const SparseGroupParams params = DefaultParams();
  auto lines = SyntheticLines(10, 1, 3);
  const ByteBuffer buf = SparseCodec::EncodeGroup(lines, params);
  std::vector<Polyline> decoded;
  ASSERT_TRUE(SparseCodec::DecodeGroup(buf, params, &decoded).ok());
  ExpectLinesEqual(lines, decoded);
}

TEST(SparseCodecTest, NegativeCoordinates) {
  SparseGroupParams params = DefaultParams();
  std::vector<Polyline> lines(1);
  lines[0].points = {QPoint{-30000, -500, 100}, QPoint{-29990, -498, 102},
                     QPoint{-29980, -503, 99}};
  const ByteBuffer buf = SparseCodec::EncodeGroup(lines, params);
  std::vector<Polyline> decoded;
  ASSERT_TRUE(SparseCodec::DecodeGroup(buf, params, &decoded).ok());
  ExpectLinesEqual(lines, decoded);
}

TEST(SparseCodecTest, RadialJumpsTriggerRefSymbols) {
  // Construct two stacked lines where the lower line crosses an object
  // boundary: the radial decision must fall into Situation (2)(b) at least
  // once and still round-trip.
  SparseGroupParams params = DefaultParams();
  params.th_r = 10;
  std::vector<Polyline> lines(2);
  for (int i = 0; i < 30; ++i) {
    lines[0].points.push_back(QPoint{i * 10, 0, i < 15 ? 100 : 400});
  }
  for (int i = 0; i < 30; ++i) {
    lines[1].points.push_back(QPoint{i * 10 + 3, 30, i < 14 ? 101 : 398});
  }
  const ByteBuffer buf = SparseCodec::EncodeGroup(lines, params);
  std::vector<Polyline> decoded;
  ASSERT_TRUE(SparseCodec::DecodeGroup(buf, params, &decoded).ok());
  ExpectLinesEqual(lines, decoded);
}

TEST(SparseCodecTest, RealFrameGroupRoundTrip) {
  // End-to-end over a real generated frame: convert, organize, encode,
  // decode, compare quantized coordinates.
  const SceneGenerator gen(SceneType::kCity);
  const PointCloud full = gen.Generate(0);
  std::vector<uint32_t> indices;
  for (uint32_t i = 0; i < full.size(); i += 7) indices.push_back(i);

  ConverterConfig config;
  config.q_xyz = 0.02;
  config.spherical = true;
  config.sensor_u_theta = 2 * M_PI / 2083;
  config.sensor_u_phi = 26.8 * M_PI / 180 / 64;
  const ConvertedGroup group = ConvertGroup(full.view(), indices, config);
  const OrganizeResult organized = OrganizeSparsePoints(
      group.role, full.view(), indices, group.quantized, group.u_theta,
      group.u_phi, 2);
  ASSERT_GT(organized.polylines.size(), 10u);

  const ByteBuffer buf =
      SparseCodec::EncodeGroup(organized.polylines, group.params);
  std::vector<Polyline> decoded;
  ASSERT_TRUE(SparseCodec::DecodeGroup(buf, group.params, &decoded).ok());
  ExpectLinesEqual(organized.polylines, decoded);

  // Reconstruction error: within sqrt(3) * q of the original points.
  const double limit = std::sqrt(3.0) * config.q_xyz * (1 + 1e-6);
  for (size_t l = 0; l < decoded.size(); ++l) {
    for (size_t p = 0; p < decoded[l].size(); ++p) {
      const Point3 rec =
          ReconstructPoint(decoded[l].points[p], group.params, true);
      const uint32_t src = organized.polylines[l].source_indices[p];
      EXPECT_LE(rec.DistanceTo(full[indices[src]]), limit);
    }
  }
}

TEST(SparseCodecTest, TruncatedStreamFails) {
  const SparseGroupParams params = DefaultParams();
  const auto lines = SyntheticLines(5, 20, 9);
  const ByteBuffer buf = SparseCodec::EncodeGroup(lines, params);
  ByteBuffer truncated;
  truncated.Append(buf.data(), buf.size() / 2);
  std::vector<Polyline> decoded;
  EXPECT_FALSE(SparseCodec::DecodeGroup(truncated, params, &decoded).ok());
}

TEST(SparseCodecTest, RadialOptimizationShrinksStream) {
  // On stacked lines with similar r patterns, the optimized encoding should
  // not be larger than plain delta (paper: -Radial reaches only 88% of
  // DBGC's ratio).
  const SceneGenerator gen(SceneType::kCampus);
  const PointCloud full = gen.Generate(0);
  std::vector<uint32_t> indices;
  for (uint32_t i = 0; i < full.size(); i += 4) indices.push_back(i);
  ConverterConfig config;
  config.q_xyz = 0.02;
  config.spherical = true;
  config.sensor_u_theta = 2 * M_PI / 2083;
  config.sensor_u_phi = 26.8 * M_PI / 180 / 64;
  const ConvertedGroup group = ConvertGroup(full.view(), indices, config);
  const OrganizeResult organized = OrganizeSparsePoints(
      group.role, full.view(), indices, group.quantized, group.u_theta,
      group.u_phi, 2);

  SparseGroupParams radial = group.params;
  radial.radial_optimized = true;
  SparseGroupParams plain = group.params;
  plain.radial_optimized = false;
  const size_t radial_size =
      SparseCodec::EncodeGroup(organized.polylines, radial).size();
  const size_t plain_size =
      SparseCodec::EncodeGroup(organized.polylines, plain).size();
  EXPECT_LT(radial_size, plain_size * 105 / 100);
}

}  // namespace
}  // namespace dbgc
