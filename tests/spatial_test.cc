// Unit and property tests for src/spatial: Morton codes, octree, quadtree,
// kd-tree, and voxel grid.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"
#include "spatial/quadtree.h"
#include "spatial/voxel_grid.h"

namespace dbgc {
namespace {

TEST(MortonTest, RoundTrip3D) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBounded(1u << 21));
    const uint32_t y = static_cast<uint32_t>(rng.NextBounded(1u << 21));
    const uint32_t z = static_cast<uint32_t>(rng.NextBounded(1u << 21));
    uint32_t dx, dy, dz;
    MortonDecode3(MortonEncode3(x, y, z), &dx, &dy, &dz);
    ASSERT_EQ(dx, x);
    ASSERT_EQ(dy, y);
    ASSERT_EQ(dz, z);
  }
}

TEST(MortonTest, OctantConvention) {
  // Bit 0 = x, bit 1 = y, bit 2 = z (matches Cube::Child).
  EXPECT_EQ(MortonEncode3(1, 0, 0), 1u);
  EXPECT_EQ(MortonEncode3(0, 1, 0), 2u);
  EXPECT_EQ(MortonEncode3(0, 0, 1), 4u);
  EXPECT_EQ(MortonEncode3(1, 1, 1), 7u);
}

TEST(MortonTest, RoundTrip2D) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextUint64());
    const uint32_t y = static_cast<uint32_t>(rng.NextUint64());
    uint32_t dx, dy;
    MortonDecode2(MortonEncode2(x, y), &dx, &dy);
    ASSERT_EQ(dx, x);
    ASSERT_EQ(dy, y);
  }
}

PointCloud RandomCloud(size_t n, double extent, uint64_t seed) {
  Rng rng(seed);
  PointCloud pc;
  for (size_t i = 0; i < n; ++i) {
    pc.Add(rng.NextRange(-extent, extent), rng.NextRange(-extent, extent),
           rng.NextRange(-extent, extent));
  }
  return pc;
}

TEST(OctreeTest, EmptyCloud) {
  auto tree = Octree::Build(PointCloud(), 0.1);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().num_leaves(), 0u);
  EXPECT_TRUE(Octree::ExtractPoints(tree.value()).empty());
}

TEST(OctreeTest, SinglePoint) {
  PointCloud pc;
  pc.Add(1, 2, 3);
  auto tree = Octree::Build(pc, 0.1);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().num_leaves(), 1u);
  const PointCloud out = Octree::ExtractPoints(tree.value());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LE(out[0].ChebyshevDistanceTo(pc[0]), 0.05 + 1e-12);
}

TEST(OctreeTest, PointCountPreserved) {
  const PointCloud pc = RandomCloud(5000, 50.0, 3);
  auto tree = Octree::Build(pc, 0.04);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().num_points(), pc.size());
  EXPECT_EQ(Octree::ExtractPoints(tree.value()).size(), pc.size());
}

class OctreeErrorBound : public ::testing::TestWithParam<double> {};

TEST_P(OctreeErrorBound, PerDimensionErrorAtMostQ) {
  const double q = GetParam();
  const PointCloud pc = RandomCloud(2000, 30.0, 4);
  auto tree = Octree::Build(pc, 2.0 * q);
  ASSERT_TRUE(tree.ok());
  // Each point's leaf center is within q per dimension.
  const auto keys = Octree::LeafKeys(tree.value());
  const double leaf =
      tree.value().root.side / std::ldexp(1.0, tree.value().depth);
  std::set<uint64_t> key_set(keys.begin(), keys.end());
  for (const Point3& p : pc) {
    const uint64_t key =
        Octree::LeafKeyOf(p, tree.value().root, tree.value().depth);
    ASSERT_TRUE(key_set.count(key) > 0);
    uint32_t ix, iy, iz;
    MortonDecode3(key, &ix, &iy, &iz);
    const Point3 center{
        tree.value().root.origin.x + (ix + 0.5) * leaf,
        tree.value().root.origin.y + (iy + 0.5) * leaf,
        tree.value().root.origin.z + (iz + 0.5) * leaf};
    EXPECT_LE(p.ChebyshevDistanceTo(center), q * (1 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, OctreeErrorBound,
                         ::testing::Values(0.002, 0.01, 0.02, 0.1));

TEST(OctreeTest, DuplicatePointsCounted) {
  PointCloud pc;
  for (int i = 0; i < 7; ++i) pc.Add(1.0, 1.0, 1.0);
  pc.Add(5.0, 5.0, 5.0);
  auto tree = Octree::Build(pc, 0.1);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().num_leaves(), 2u);
  EXPECT_EQ(tree.value().num_points(), 8u);
}

TEST(OctreeTest, LevelsAreConsistent) {
  const PointCloud pc = RandomCloud(1000, 10.0, 5);
  auto tree_result = Octree::Build(pc, 0.05);
  ASSERT_TRUE(tree_result.ok());
  const OctreeStructure& tree = tree_result.value();
  // Children counts derived from popcounts match the next level's size.
  size_t expected = 1;
  for (int l = 0; l < tree.depth; ++l) {
    ASSERT_EQ(tree.levels[l].size(), expected);
    size_t children = 0;
    for (uint8_t occ : tree.levels[l]) {
      ASSERT_NE(occ, 0);  // No empty occupancy bytes are stored.
      children += __builtin_popcount(occ);
    }
    expected = children;
  }
  EXPECT_EQ(tree.leaf_counts.size(), expected);
}

TEST(OctreeTest, TooDeepRejected) {
  PointCloud pc;
  pc.Add(0, 0, 0);
  pc.Add(1e6, 1e6, 1e6);
  EXPECT_FALSE(Octree::Build(pc, 1e-6).ok());
}

TEST(QuadtreeTest, RoundTripAndBound) {
  Rng rng(6);
  std::vector<Point2> pts;
  for (int i = 0; i < 3000; ++i) {
    pts.push_back(Point2{rng.NextRange(-80, 80), rng.NextRange(-80, 80)});
  }
  const double q = 0.02;
  auto tree = Quadtree::Build(pts, 2.0 * q);
  ASSERT_TRUE(tree.ok());
  const auto out = Quadtree::ExtractPoints(tree.value());
  ASSERT_EQ(out.size(), pts.size());
  // Mapping check: each input's leaf center is within q per dimension.
  for (const Point2& p : pts) {
    const uint64_t key = Quadtree::LeafKeyOf(p.x, p.y, tree.value());
    uint32_t ix, iy;
    MortonDecode2(key, &ix, &iy);
    const double leaf =
        tree.value().side / std::ldexp(1.0, tree.value().depth);
    const double cx = tree.value().origin_x + (ix + 0.5) * leaf;
    const double cy = tree.value().origin_y + (iy + 0.5) * leaf;
    EXPECT_LE(std::fabs(p.x - cx), q * (1 + 1e-9));
    EXPECT_LE(std::fabs(p.y - cy), q * (1 + 1e-9));
  }
}

TEST(QuadtreeTest, Empty) {
  auto tree = Quadtree::Build({}, 0.04);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(Quadtree::ExtractPoints(tree.value()).empty());
}

TEST(KdTreeTest, NearestMatchesBruteForce) {
  const PointCloud pc = RandomCloud(500, 10.0, 7);
  const KdTree tree(pc);
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const Point3 query{rng.NextRange(-12, 12), rng.NextRange(-12, 12),
                       rng.NextRange(-12, 12)};
    const int got = tree.Nearest(query);
    int expected = 0;
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < pc.size(); ++i) {
      const double d = (pc[i] - query).SquaredNorm();
      if (d < best) {
        best = d;
        expected = static_cast<int>(i);
      }
    }
    ASSERT_GE(got, 0);
    EXPECT_DOUBLE_EQ((pc[got] - query).SquaredNorm(), best)
        << "got " << got << " expected " << expected;
  }
}

TEST(KdTreeTest, RadiusMatchesBruteForce) {
  const PointCloud pc = RandomCloud(400, 5.0, 9);
  const KdTree tree(pc);
  Rng rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    const Point3 query{rng.NextRange(-6, 6), rng.NextRange(-6, 6),
                       rng.NextRange(-6, 6)};
    const double radius = rng.NextRange(0.1, 3.0);
    std::vector<int> got = tree.RadiusSearch(query, radius);
    std::sort(got.begin(), got.end());
    std::vector<int> expected;
    for (size_t i = 0; i < pc.size(); ++i) {
      if ((pc[i] - query).SquaredNorm() <= radius * radius) {
        expected.push_back(static_cast<int>(i));
      }
    }
    ASSERT_EQ(got, expected);
    EXPECT_EQ(tree.CountWithinRadius(query, radius), expected.size());
  }
}

TEST(KdTreeTest, EmptyTree) {
  const PointCloud pc;
  const KdTree tree(pc);
  EXPECT_EQ(tree.Nearest({0, 0, 0}), -1);
  EXPECT_TRUE(tree.RadiusSearch({0, 0, 0}, 10).empty());
}

TEST(KdTreeTest, ExcludeSelf) {
  PointCloud pc;
  pc.Add(0, 0, 0);
  pc.Add(1, 0, 0);
  const KdTree tree(pc);
  EXPECT_EQ(tree.Nearest({0, 0, 0}, /*exclude=*/0), 1);
}

TEST(VoxelGridTest, RadiusMatchesBruteForce) {
  const PointCloud pc = RandomCloud(600, 4.0, 11);
  const VoxelGrid grid(pc, 0.5);
  Rng rng(12);
  for (int trial = 0; trial < 100; ++trial) {
    const Point3 query{rng.NextRange(-5, 5), rng.NextRange(-5, 5),
                       rng.NextRange(-5, 5)};
    const double radius = rng.NextRange(0.1, 2.0);
    std::vector<int> got = grid.RadiusSearch(query, radius);
    std::sort(got.begin(), got.end());
    std::vector<int> expected;
    for (size_t i = 0; i < pc.size(); ++i) {
      if ((pc[i] - query).SquaredNorm() <= radius * radius) {
        expected.push_back(static_cast<int>(i));
      }
    }
    ASSERT_EQ(got, expected);
  }
}

TEST(VoxelGridTest, CountEarlyExit) {
  PointCloud pc;
  for (int i = 0; i < 100; ++i) pc.Add(0.01 * i, 0, 0);
  const VoxelGrid grid(pc, 0.5);
  EXPECT_EQ(grid.CountWithinRadius({0.5, 0, 0}, 10.0, 5), 5u);
  EXPECT_EQ(grid.CountWithinRadius({0.5, 0, 0}, 10.0, 1000), 100u);
}

TEST(VoxelGridTest, CellMembership) {
  PointCloud pc;
  pc.Add(0.1, 0.1, 0.1);
  pc.Add(0.2, 0.2, 0.2);
  pc.Add(0.9, 0.9, 0.9);
  const VoxelGrid grid(pc, 0.5);
  EXPECT_EQ(grid.num_cells(), 2u);
  EXPECT_EQ(grid.PointsInCell(grid.CoordOf(pc[0])).size(), 2u);
  EXPECT_EQ(grid.PointsInCell(grid.CoordOf(pc[2])).size(), 1u);
  EXPECT_TRUE(grid.PointsInCell(VoxelCoord{100, 100, 100}).empty());
}

TEST(VoxelGridTest, NegativeCoordinatesDistinct) {
  PointCloud pc;
  pc.Add(-0.1, 0, 0);
  pc.Add(0.1, 0, 0);
  const VoxelGrid grid(pc, 0.5);
  EXPECT_EQ(grid.num_cells(), 2u);
}

}  // namespace
}  // namespace dbgc
