// Conformance suite for the temporal I/P-frame streaming codec
// (docs/TEMPORAL.md): P-frame reconstruction equals the per-frame intra
// grid decode, any single lost P-frame recovers byte-identically at the
// next keyframe, randomized keyframe intervals round-trip under both
// entropy backends, and the SceneGenerator drives feeding the benchmarks
// are deterministic and temporally coherent.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "codec/range_image_codec.h"
#include "common/point_cloud.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/transforms.h"
#include "core/temporal_codec.h"
#include "lidar/scene_generator.h"
#include "lidar/sensor_model.h"

namespace dbgc {
namespace {

// A reduced azimuth resolution keeps one frame around 20 K points, enough
// for every codec path while the multi-frame suites stay fast.
SensorMetadata TestSensor() { return SensorMetadata::VelodyneHdl64e(512); }

constexpr double kQ = 0.02;

TemporalConfig TestConfig(int keyframe_interval) {
  TemporalConfig config;
  config.keyframe_interval = keyframe_interval;
  config.sensor = TestSensor();
  config.intra_options.q_xyz = kQ;
  return config;
}

std::vector<StreamFrame> TestDrive(size_t num_frames,
                                   SceneType type = SceneType::kCity) {
  SceneGenerator generator(type);
  return generator.GenerateSequence(num_frames, SequenceConfig(), TestSensor());
}

// Bit-exact cloud equality: the loss-recovery and determinism contracts
// are byte-level, not tolerance-level.
bool CloudsIdentical(const PointCloud& a, const PointCloud& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

TEST(TemporalStreamTest, PFrameDecodeEqualsPerFrameIntraDecode) {
  const std::vector<StreamFrame> drive = TestDrive(4);
  TemporalStreamWriter writer(TestConfig(4));
  for (const StreamFrame& frame : drive) {
    ASSERT_TRUE(writer.AddFrame(frame.cloud, frame.pose).ok());
  }
  const ByteBuffer stream = writer.Finish();

  auto reader = TemporalStreamReader::Open(stream);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader.value().frame_count(), drive.size());

  // The independent intra reference: the range-image codec resamples onto
  // the same sensor grid with the same quantization, so a P-frame decode
  // must reproduce its round trip exactly — prediction only changes the
  // bits on the wire, never the reconstruction.
  const RangeImageCodec intra(TestSensor());
  for (size_t i = 0; i < drive.size(); ++i) {
    const auto type = reader.value().FrameType(i);
    ASSERT_TRUE(type.ok());
    EXPECT_EQ(type.value(), i == 0 ? kTemporalFrameIntra
                                   : kTemporalFramePredicted);
    auto decoded = reader.value().DecodeNext();
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    if (i == 0) continue;  // The I-frame is plain DBGC, covered elsewhere.

    auto intra_bits = intra.Compress(drive[i].cloud, kQ);
    ASSERT_TRUE(intra_bits.ok());
    auto intra_decoded = intra.Decompress(intra_bits.value());
    ASSERT_TRUE(intra_decoded.ok());
    EXPECT_TRUE(CloudsIdentical(decoded.value(), intra_decoded.value()))
        << "P-frame " << i << " diverged from the intra grid decode";

    auto oracle = TemporalGridReconstruction(drive[i].cloud, kQ, TestSensor());
    ASSERT_TRUE(oracle.ok());
    EXPECT_TRUE(CloudsIdentical(decoded.value(), oracle.value()));
  }
}

TEST(TemporalStreamTest, DecodedPFrameStaysWithinRadialBound) {
  const std::vector<StreamFrame> drive = TestDrive(2);
  TemporalStreamWriter writer(TestConfig(8));
  for (const StreamFrame& frame : drive) {
    ASSERT_TRUE(writer.AddFrame(frame.cloud, frame.pose).ok());
  }
  const ByteBuffer stream = writer.Finish();
  auto reader = TemporalStreamReader::Open(stream);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader.value().DecodeNext().ok());
  auto p_frame = reader.value().DecodeNext();
  ASSERT_TRUE(p_frame.ok());

  // Project the original frame onto the sensor grid and check each decoded
  // point's radius against the nearest return of its own cell: the grid
  // quantizes at 2 * q_xyz, so the radial error is at most q_xyz.
  const SensorMetadata sensor = TestSensor();
  const double u_theta = sensor.AzimuthStep();
  const double u_phi = sensor.PolarStep();
  const size_t width = static_cast<size_t>(sensor.horizontal_samples);
  std::vector<double> nearest(width * sensor.vertical_samples,
                              std::numeric_limits<double>::infinity());
  for (const Point3& p : drive[1].cloud) {
    const double r = std::sqrt(p.SquaredNorm());
    const double theta = std::atan2(p.y, p.x);
    const double phi = std::asin(p.z / r);
    int col = static_cast<int>(std::floor((theta - sensor.theta_min) / u_theta));
    int row = static_cast<int>(std::floor((sensor.phi_max - phi) / u_phi));
    col = std::clamp(col, 0, sensor.horizontal_samples - 1);
    row = std::clamp(row, 0, sensor.vertical_samples - 1);
    double& cell = nearest[static_cast<size_t>(row) * width + col];
    if (r < cell) cell = r;
  }
  for (const Point3& p : p_frame.value()) {
    const double r = std::sqrt(p.SquaredNorm());
    const double theta = std::atan2(p.y, p.x);
    const double phi = std::asin(p.z / r);
    int col = static_cast<int>(std::floor((theta - sensor.theta_min) / u_theta));
    int row = static_cast<int>(std::floor((sensor.phi_max - phi) / u_phi));
    col = std::clamp(col, 0, sensor.horizontal_samples - 1);
    row = std::clamp(row, 0, sensor.vertical_samples - 1);
    const double ref = nearest[static_cast<size_t>(row) * width + col];
    ASSERT_TRUE(std::isfinite(ref));
    EXPECT_LE(std::fabs(r - ref), kQ + 1e-9);
  }
}

TEST(TemporalStreamTest, DroppingAnySinglePFrameRecoversAtNextKeyframe) {
  constexpr int kInterval = 3;
  const std::vector<StreamFrame> drive = TestDrive(9);
  TemporalStreamWriter writer(TestConfig(kInterval));
  for (const StreamFrame& frame : drive) {
    ASSERT_TRUE(writer.AddFrame(frame.cloud, frame.pose).ok());
  }
  const ByteBuffer stream = writer.Finish();

  // Reference run: no loss.
  auto reference = TemporalStreamReader::Open(stream);
  ASSERT_TRUE(reference.ok());
  std::vector<PointCloud> expected;
  for (size_t i = 0; i < drive.size(); ++i) {
    auto decoded = reference.value().DecodeNext();
    ASSERT_TRUE(decoded.ok());
    expected.push_back(std::move(decoded.value()));
  }

  for (size_t lost = 0; lost < drive.size(); ++lost) {
    auto type = reference.value().FrameType(lost);
    ASSERT_TRUE(type.ok());
    if (type.value() != kTemporalFramePredicted) continue;
    // A keyframe must follow the loss for resynchronization to be
    // possible; losses in the final GOP legitimately never recover.
    bool keyframe_follows = false;
    for (size_t i = lost + 1; i < drive.size(); ++i) {
      auto later = reference.value().FrameType(i);
      ASSERT_TRUE(later.ok());
      if (later.value() == kTemporalFrameIntra) keyframe_follows = true;
    }

    auto lossy = TemporalStreamReader::Open(stream);
    ASSERT_TRUE(lossy.ok());
    for (size_t i = 0; i < lost; ++i) {
      ASSERT_TRUE(lossy.value().DecodeNext().ok());
    }
    ASSERT_TRUE(lossy.value().SkipNext().ok());
    bool resynced = false;
    for (size_t i = lost + 1; i < drive.size(); ++i) {
      auto frame_type = lossy.value().FrameType(i);
      ASSERT_TRUE(frame_type.ok());
      if (frame_type.value() == kTemporalFrameIntra) resynced = true;
      auto decoded = lossy.value().DecodeNext();
      if (!resynced) {
        // P-frames after a loss must fail closed, never emit a guess.
        EXPECT_FALSE(decoded.ok()) << "frame " << i << " after losing "
                                   << lost;
        continue;
      }
      ASSERT_TRUE(decoded.ok()) << decoded.status().message();
      EXPECT_TRUE(CloudsIdentical(decoded.value(), expected[i]))
          << "frame " << i << " after losing " << lost
          << " is not byte-identical to the lossless run";
    }
    EXPECT_EQ(resynced, keyframe_follows) << "lost " << lost;
  }
}

TEST(TemporalStreamTest, RandomizedKeyframeIntervalsRoundTrip) {
  const uint64_t seed = 0x7E32B08D1B54A32ULL;
  SCOPED_TRACE("seed=0x7E32B08D1B54A32");  // Reproduces shrinking repros.
  Rng rng(seed);
  const std::vector<StreamFrame> drive = TestDrive(5, SceneType::kResidential);
  for (int trial = 0; trial < 3; ++trial) {
    const int interval = 1 + static_cast<int>(rng.NextBounded(5));
    const EntropyBackend backend =
        trial % 2 == 0 ? EntropyBackend::kRangeV2 : EntropyBackend::kArithmeticV1;
    TemporalStreamWriter writer(TestConfig(interval));
    CompressParams params;
    params.q_xyz = kQ;
    params.entropy_backend = backend;
    for (const StreamFrame& frame : drive) {
      ASSERT_TRUE(writer.AddFrame(frame.cloud, frame.pose, params).ok());
    }
    const ByteBuffer stream = writer.Finish();
    auto reader = TemporalStreamReader::Open(stream);
    ASSERT_TRUE(reader.ok());
    for (size_t i = 0; i < drive.size(); ++i) {
      auto type = reader.value().FrameType(i);
      ASSERT_TRUE(type.ok());
      EXPECT_EQ(type.value(), (i % static_cast<size_t>(interval)) == 0
                                  ? kTemporalFrameIntra
                                  : kTemporalFramePredicted)
          << "trial " << trial << " interval " << interval << " frame " << i;
      auto decoded = reader.value().DecodeNext();
      ASSERT_TRUE(decoded.ok())
          << "trial " << trial << " interval " << interval << " frame " << i
          << ": " << decoded.status().message();
      EXPECT_GT(decoded.value().size(), 0u);
    }
  }
}

TEST(TemporalStreamTest, PFrameWithoutReferenceFailsClosed) {
  const std::vector<StreamFrame> drive = TestDrive(2);
  TemporalEncoder encoder(TestConfig(8));
  ASSERT_TRUE(encoder.EncodeFrame(drive[0].cloud, drive[0].pose).ok());
  auto p_packet = encoder.EncodeFrame(drive[1].cloud, drive[1].pose);
  ASSERT_TRUE(p_packet.ok());
  ASSERT_EQ(p_packet.value()[0], kTemporalFramePredicted);

  TemporalDecoder decoder(DbgcOptions(), /*count_decode_errors=*/false);
  EXPECT_FALSE(decoder.DecodeFrame(p_packet.value()).ok());
  EXPECT_FALSE(decoder.has_reference());
}

TEST(TemporalStreamTest, UnknownFrameTypeByteFailsClosed) {
  TemporalDecoder decoder(DbgcOptions(), /*count_decode_errors=*/false);
  for (uint8_t type : {uint8_t{0x00}, uint8_t{0x01}, uint8_t{0x02},
                       uint8_t{'Q'}, uint8_t{0xFF}}) {
    ByteBuffer packet;
    packet.AppendByte(type);
    for (int i = 0; i < 4; ++i) packet.AppendDouble(0.0);
    auto decoded = decoder.DecodeFrame(packet);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
  ByteBuffer empty;
  EXPECT_FALSE(decoder.DecodeFrame(empty).ok());
}

TEST(TemporalStreamTest, StreamContainerFailsClosedOnHeaderDamage) {
  const std::vector<StreamFrame> drive = TestDrive(2);
  TemporalStreamWriter writer(TestConfig(2));
  for (const StreamFrame& frame : drive) {
    ASSERT_TRUE(writer.AddFrame(frame.cloud, frame.pose).ok());
  }
  const ByteBuffer stream = writer.Finish();

  ByteBuffer bad_magic = stream;
  bad_magic.mutable_bytes()[0] ^= 0xFF;
  EXPECT_FALSE(TemporalStreamReader::Open(bad_magic).ok());

  ByteBuffer bad_version = stream;
  bad_version.mutable_bytes()[4] = 0x7F;
  EXPECT_FALSE(TemporalStreamReader::Open(bad_version).ok());

  for (size_t keep : {size_t{0}, size_t{3}, size_t{5}, stream.size() / 2}) {
    ByteBuffer truncated(std::vector<uint8_t>(
        stream.bytes().begin(),
        stream.bytes().begin() + static_cast<ptrdiff_t>(keep)));
    EXPECT_FALSE(TemporalStreamReader::Open(truncated).ok()) << keep;
  }
}

TEST(TemporalStreamTest, PFramesBeatIntraFramesOnCoherentDrive) {
  const std::vector<StreamFrame> drive = TestDrive(6);
  TemporalStreamWriter writer(TestConfig(6));
  std::vector<size_t> sizes;
  for (const StreamFrame& frame : drive) {
    auto bytes = writer.AddFrame(frame.cloud, frame.pose);
    ASSERT_TRUE(bytes.ok());
    sizes.push_back(bytes.value());
  }
  double p_total = 0.0;
  for (size_t i = 1; i < sizes.size(); ++i) {
    p_total += static_cast<double>(sizes[i]);
  }
  const double p_mean = p_total / static_cast<double>(sizes.size() - 1);
  EXPECT_LT(p_mean, static_cast<double>(sizes[0]))
      << "P-frames should be smaller than the I-frame on a coherent drive";
}

// Byte-identical bitstreams at every thread budget — the same determinism
// contract the intra codecs honour (docs/PARALLELISM.md). Referenced by
// the TSan gate regex in scripts/check.sh.
TEST(TemporalConcurrency, BitstreamInvariantUnderThreadCount) {
  const std::vector<StreamFrame> drive = TestDrive(3);
  ThreadPool pool(8);

  auto encode_all = [&](ThreadPool* p, int budget) {
    TemporalStreamWriter writer(TestConfig(2));
    for (const StreamFrame& frame : drive) {
      CompressParams params;
      params.q_xyz = kQ;
      params.pool = p;
      params.max_threads = budget;
      auto added = writer.AddFrame(frame.cloud, frame.pose, params);
      EXPECT_TRUE(added.ok());
    }
    return writer.Finish();
  };

  const ByteBuffer serial = encode_all(nullptr, 0);
  for (int budget : {1, 2, 8}) {
    const ByteBuffer threaded = encode_all(&pool, budget);
    ASSERT_EQ(serial.size(), threaded.size()) << "budget " << budget;
    EXPECT_TRUE(serial == threaded) << "budget " << budget;
  }

  // Decode under a pool as well: same clouds as the serial decode.
  auto serial_reader = TemporalStreamReader::Open(serial);
  ASSERT_TRUE(serial_reader.ok());
  auto pooled_reader = TemporalStreamReader::Open(serial);
  ASSERT_TRUE(pooled_reader.ok());
  DecompressParams pooled;
  pooled.pool = &pool;
  pooled.max_threads = 8;
  for (size_t i = 0; i < drive.size(); ++i) {
    auto a = serial_reader.value().DecodeNext();
    auto b = pooled_reader.value().DecodeNext(pooled);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(CloudsIdentical(a.value(), b.value())) << "frame " << i;
  }
}

// --- SceneGenerator drive contracts ----------------------------------------

TEST(SceneSequenceTest, SameSeedGivesBitIdenticalSequences) {
  SceneGenerator generator(SceneType::kUrban, 77);
  SequenceConfig config;
  config.moving_actors = 3;
  const auto a = generator.GenerateSequence(3, config, TestSensor());
  const auto b = generator.GenerateSequence(3, config, TestSensor());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(CloudsIdentical(a[i].cloud, b[i].cloud)) << "frame " << i;
    EXPECT_EQ(a[i].pose.yaw, b[i].pose.yaw);
    EXPECT_TRUE(a[i].pose.translation == b[i].pose.translation);
  }
}

TEST(SceneSequenceTest, PosesFollowTheConfiguredTrajectory) {
  SceneGenerator generator(SceneType::kRoad);
  SequenceConfig config;
  config.speed_mps = 10.0;
  config.lateral_amplitude = 0.0;
  const auto frames = generator.GenerateSequence(3, config, TestSensor());
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].pose.translation.x, 0.0);
  // 10 Hz sensor: one meter of ego motion per frame at 10 m/s.
  EXPECT_NEAR(frames[1].pose.translation.x, 1.0, 1e-12);
  EXPECT_NEAR(frames[2].pose.translation.x, 2.0, 1e-12);
}

TEST(SceneSequenceTest, ConsecutiveFramesOverlapInWorldCoordinates) {
  SceneGenerator generator(SceneType::kCity);
  const auto frames = generator.GenerateSequence(2, SequenceConfig(),
                                                 TestSensor());
  ASSERT_EQ(frames.size(), 2u);

  // Temporal coherence: most points of frame 1, mapped to world
  // coordinates, land in voxels occupied by frame 0. Independent frames
  // (or a broken trajectory) fail this badly.
  constexpr double kVoxel = 0.4;
  auto key = [](const Point3& p) {
    const auto q = [](double v) {
      return static_cast<int64_t>(std::floor(v / kVoxel));
    };
    uint64_t h = 1469598103934665603ULL;
    for (int64_t c : {q(p.x), q(p.y), q(p.z)}) {
      h ^= static_cast<uint64_t>(c);
      h *= 1099511628211ULL;
    }
    return h;
  };
  std::unordered_set<uint64_t> occupied;
  for (const Point3& p : frames[0].cloud) {
    occupied.insert(key(frames[0].pose.Apply(p)));
  }
  size_t hits = 0;
  for (const Point3& p : frames[1].cloud) {
    if (occupied.count(key(frames[1].pose.Apply(p))) > 0) ++hits;
  }
  const double overlap = static_cast<double>(hits) /
                         static_cast<double>(frames[1].cloud.size());
  EXPECT_GT(overlap, 0.5) << "frame-to-frame overlap " << overlap;
}

}  // namespace
}  // namespace dbgc
