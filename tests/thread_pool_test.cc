// Tests for the intra-frame parallelism substrate (docs/PARALLELISM.md):
// ParallelFor index coverage, exception-to-Status propagation, nested use
// from inside pool tasks, and a stress mix designed to surface data races
// under -DDBGC_SANITIZE=thread (scripts/check.sh runs exactly that).

#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dbgc {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (size_t grain : {1u, 3u, 64u, 5000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      const Status st = pool.ParallelFor(
          0, n, grain, [&](size_t lo, size_t hi) {
            ASSERT_LE(lo, hi);
            ASSERT_LE(hi - lo, grain);
            for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
          });
      ASSERT_TRUE(st.ok()) << st.ToString();
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain
                                     << " index " << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForHonoursNonZeroBegin) {
  ThreadPool pool(2);
  std::vector<uint8_t> hit(100, 0);
  const Status st = pool.ParallelFor(40, 100, 7, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hit[i] = 1;
  });
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(hit[i], i >= 40 ? 1 : 0);
}

TEST(ThreadPoolTest, ExceptionBecomesInternalStatus) {
  ThreadPool pool(3);
  const Status st = pool.ParallelFor(0, 100, 1, [&](size_t lo, size_t) {
    if (lo == 37) throw std::runtime_error("chunk 37 exploded");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("chunk 37 exploded"), std::string::npos)
      << st.ToString();
}

TEST(ThreadPoolTest, ExceptionOnEveryChunkStillReturns) {
  ThreadPool pool(4);
  // Poisoning must terminate even when many chunks throw concurrently.
  const Status st = pool.ParallelFor(
      0, 1000, 1, [&](size_t, size_t) { throw 42; });
  EXPECT_FALSE(st.ok());
}

TEST(ThreadPoolTest, MaxThreadsOneRunsOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  const Status st = pool.ParallelFor(
      0, 64, 4,
      [&](size_t, size_t) {
        if (std::this_thread::get_id() != caller) off_thread = true;
      },
      /*max_threads=*/1);
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(off_thread.load());
}

TEST(ThreadPoolTest, ScheduleRunsEveryTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Schedule([&ran] { ran.fetch_add(1); });
    }
    // Destructor completes scheduled tasks before joining.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, NestedParallelForOnSamePoolDoesNotDeadlock) {
  ThreadPool pool(2);
  // More outer loops than workers, each running an inner loop on the same
  // pool: progress relies on callers executing chunks themselves.
  std::atomic<int64_t> sum{0};
  const Status outer = pool.ParallelFor(0, 8, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const Status inner =
          pool.ParallelFor(0, 100, 9, [&](size_t ilo, size_t ihi) {
            for (size_t j = ilo; j < ihi; ++j) {
              sum.fetch_add(static_cast<int64_t>(j));
            }
          });
      ASSERT_TRUE(inner.ok());
    }
  });
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(sum.load(), 8 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromManyThreads) {
  // TSan stress: several external threads drive ParallelFor on one shared
  // pool while Schedule tasks churn in between.
  ThreadPool pool(4);
  constexpr int kDrivers = 4;
  constexpr int kRounds = 25;
  std::atomic<int64_t> total{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&pool, &total] {
      for (int r = 0; r < kRounds; ++r) {
        std::vector<int64_t> partial(128, 0);
        const Status st =
            pool.ParallelFor(0, partial.size(), 8,
                             [&](size_t lo, size_t hi) {
                               for (size_t i = lo; i < hi; ++i) {
                                 partial[i] = static_cast<int64_t>(i);
                               }
                             });
        ASSERT_TRUE(st.ok());
        total.fetch_add(std::accumulate(partial.begin(), partial.end(),
                                        int64_t{0}));
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(total.load(), int64_t{kDrivers} * kRounds * (127 * 128 / 2));
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ParallelismTest, DisabledBudgetsRunInline) {
  // Null pool and max_threads == 1 both mean serial.
  Parallelism null_budget;
  EXPECT_FALSE(null_budget.enabled());
  EXPECT_EQ(null_budget.width(), 1);

  ThreadPool pool(4);
  Parallelism serial{&pool, 1};
  EXPECT_FALSE(serial.enabled());

  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  int calls = 0;
  const Status st = serial.For(0, 10, 2, [&](size_t lo, size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
    if (std::this_thread::get_id() != caller) off_thread = true;
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(calls, 1);  // Inline path runs the whole range as one chunk.
  EXPECT_FALSE(off_thread.load());
}

TEST(ParallelismTest, InlineForStillCapturesExceptions) {
  Parallelism serial;
  const Status st = serial.For(
      0, 5, 1, [&](size_t, size_t) { throw std::runtime_error("inline"); });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("inline"), std::string::npos);
}

TEST(ParallelismTest, WidthAndGrainRespectCaps) {
  ThreadPool pool(7);
  const Parallelism all{&pool, 0};
  EXPECT_TRUE(all.enabled());
  EXPECT_EQ(all.width(), 8);  // Workers + the calling thread.

  const Parallelism capped{&pool, 3};
  EXPECT_EQ(capped.width(), 3);

  // GrainFor never goes below min_grain and always stays positive.
  EXPECT_GE(all.GrainFor(10000, 64), 64u);
  EXPECT_GE(all.GrainFor(10, 64), 64u);
  EXPECT_GE(all.GrainFor(0, 1), 1u);
}

TEST(ParallelismTest, EnabledForMatchesSerialResult) {
  ThreadPool pool(4);
  const Parallelism par{&pool, 0};
  std::vector<uint64_t> parallel_out(5000);
  std::vector<uint64_t> serial_out(5000);
  const Status st = par.For(0, parallel_out.size(),
                            par.GrainFor(parallel_out.size(), 16),
                            [&](size_t lo, size_t hi) {
                              for (size_t i = lo; i < hi; ++i) {
                                parallel_out[i] = i * 2654435761u;
                              }
                            });
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < serial_out.size(); ++i) {
    serial_out[i] = i * 2654435761u;
  }
  EXPECT_EQ(parallel_out, serial_out);
}

}  // namespace
}  // namespace dbgc
