// Tests for point-cloud transforms and the D1 PSNR metric.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/transforms.h"
#include "core/dbgc_codec.h"
#include "core/error_metrics.h"
#include "lidar/scene_generator.h"

namespace dbgc {
namespace {

PointCloud RandomCloud(size_t n, uint64_t seed) {
  Rng rng(seed);
  PointCloud pc;
  for (size_t i = 0; i < n; ++i) {
    pc.Add(rng.NextRange(-30, 30), rng.NextRange(-30, 30),
           rng.NextRange(-3, 3));
  }
  return pc;
}

TEST(RigidTransformTest, YawRotatesAboutZ) {
  RigidTransform t;
  t.yaw = M_PI / 2;
  const Point3 p = t.Apply({1, 0, 5});
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
  EXPECT_NEAR(p.z, 5.0, 1e-12);
}

TEST(RigidTransformTest, InverseComposesToIdentity) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    RigidTransform t;
    t.yaw = rng.NextRange(-M_PI, M_PI);
    t.translation = {rng.NextRange(-10, 10), rng.NextRange(-10, 10),
                     rng.NextRange(-2, 2)};
    const RigidTransform inv = t.Inverse();
    const Point3 p{rng.NextRange(-50, 50), rng.NextRange(-50, 50),
                   rng.NextRange(-5, 5)};
    const Point3 back = inv.Apply(t.Apply(p));
    EXPECT_NEAR(back.x, p.x, 1e-9);
    EXPECT_NEAR(back.y, p.y, 1e-9);
    EXPECT_NEAR(back.z, p.z, 1e-9);
  }
}

TEST(TransformTest, PreservesPairwiseDistances) {
  const PointCloud pc = RandomCloud(200, 2);
  RigidTransform t;
  t.yaw = 0.7;
  t.translation = {5, -3, 1};
  const PointCloud moved = Transform(pc, t);
  ASSERT_EQ(moved.size(), pc.size());
  for (size_t i = 1; i < pc.size(); i += 17) {
    EXPECT_NEAR(pc[i].DistanceTo(pc[i - 1]),
                moved[i].DistanceTo(moved[i - 1]), 1e-9);
  }
}

TEST(CropTest, RadiusAndBox) {
  PointCloud pc;
  pc.Add(1, 0, 0);
  pc.Add(10, 0, 0);
  pc.Add(0, 0, 3);
  const PointCloud near_points = CropRadius(pc, 5.0);
  EXPECT_EQ(near_points.size(), 2u);

  BoundingBox box;
  box.Extend({-1, -1, -1});
  box.Extend({2, 2, 4});
  const PointCloud inside = CropBox(pc, box);
  EXPECT_EQ(inside.size(), 2u);
}

TEST(VoxelDownsampleTest, OnePointPerVoxel) {
  PointCloud pc;
  for (int i = 0; i < 100; ++i) pc.Add(0.001 * i, 0, 0);  // One voxel.
  pc.Add(5, 5, 5);
  const PointCloud down = VoxelDownsample(pc, 0.5);
  EXPECT_EQ(down.size(), 2u);
  EXPECT_EQ(down[0], pc[0]);  // First survivor keeps input order.
}

TEST(VoxelDownsampleTest, FineVoxelsKeepEverything) {
  const PointCloud pc = RandomCloud(500, 3);
  EXPECT_EQ(VoxelDownsample(pc, 1e-6).size(), pc.size());
}

TEST(D1PsnrTest, IdenticalCloudsAreInfinite) {
  const PointCloud pc = RandomCloud(300, 4);
  EXPECT_TRUE(std::isinf(D1Psnr(pc, pc)));
  EXPECT_EQ(D1Psnr(PointCloud(), pc), 0.0);
}

TEST(D1PsnrTest, TighterBoundsScoreHigher) {
  const SceneGenerator gen(SceneType::kCity);
  const PointCloud full = gen.Generate(0);
  PointCloud pc;
  for (size_t i = 0; i < full.size(); i += 20) pc.Add(full[i]);
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  const DbgcCodec codec(options);
  double previous = 0.0;
  for (double q : {0.05, 0.02, 0.005}) {
    auto compressed = codec.Compress(pc, q);
    ASSERT_TRUE(compressed.ok());
    auto decoded = codec.Decompress(compressed.value());
    ASSERT_TRUE(decoded.ok());
    const double psnr = D1Psnr(pc, decoded.value());
    EXPECT_GT(psnr, previous) << "q=" << q;
    previous = psnr;
  }
  EXPECT_GT(previous, 60.0);  // Centimeter accuracy on a ~200 m scene.
}

}  // namespace
}  // namespace dbgc
