#include "analyzer.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace dbgc_lint {

namespace {

// ---------------------------------------------------------------------------
// Token-stream helpers. Rules operate on `code`: the indices of non-comment
// tokens, in order, so comments never break adjacency while staying
// available for suppression scanning.

struct CodeView {
  const std::vector<Token>* all;
  std::vector<size_t> code;  // Indices into *all, comments excluded.

  const Token& Tok(size_t ci) const { return (*all)[code[ci]]; }
  size_t size() const { return code.size(); }
  bool Is(size_t ci, const char* text) const {
    return ci < code.size() && Tok(ci).text == text;
  }
  bool IsIdent(size_t ci) const {
    return ci < code.size() && Tok(ci).kind == TokenKind::kIdent;
  }
};

CodeView MakeCodeView(const std::vector<Token>& tokens) {
  CodeView v;
  v.all = &tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kComment) v.code.push_back(i);
  }
  return v;
}

// Advances past a balanced (...) starting at `ci` (which must be "(").
// Returns the index just past the matching ")". Preprocessor tokens are
// treated as opaque. On imbalance returns v.size().
size_t SkipParens(const CodeView& v, size_t ci) {
  int depth = 0;
  for (; ci < v.size(); ++ci) {
    const std::string& t = v.Tok(ci).text;
    if (v.Tok(ci).kind != TokenKind::kPunct) continue;
    if (t == "(") ++depth;
    if (t == ")" && --depth == 0) return ci + 1;
  }
  return v.size();
}

// Advances past a balanced <...> starting at `ci` (which must be "<").
// ">>" closes two levels. Gives up (returns ci + 1) on expressions that are
// clearly not template argument lists.
size_t SkipAngles(const CodeView& v, size_t ci) {
  int depth = 0;
  const size_t limit = std::min(v.size(), ci + 64);
  for (size_t k = ci; k < limit; ++k) {
    const std::string& t = v.Tok(k).text;
    if (t == "<") ++depth;
    if (t == ">") {
      if (--depth == 0) return k + 1;
    }
    if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return k + 1;
    }
    if (t == ";" || t == "{") break;  // Not a template argument list.
  }
  return ci + 1;
}

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "do" || s == "else" || s == "case" || s == "new" ||
         s == "delete" || s == "throw" || s == "static_assert" ||
         s == "decltype" || s == "requires" || s == "alignas";
}

// Matches an identifier chain `a::b.c->d` starting at `ci`. On success sets
// *last_ident to the final identifier's code index and returns the index of
// the token after the chain; otherwise returns ci.
size_t MatchIdentChain(const CodeView& v, size_t ci, size_t* last_ident) {
  if (!v.IsIdent(ci) || IsControlKeyword(v.Tok(ci).text)) return ci;
  *last_ident = ci;
  size_t k = ci + 1;
  while (k + 1 < v.size() && v.Tok(k).kind == TokenKind::kPunct &&
         (v.Tok(k).text == "::" || v.Tok(k).text == "." ||
          v.Tok(k).text == "->") &&
         v.IsIdent(k + 1)) {
    *last_ident = k + 1;
    k += 2;
  }
  return k;
}

// ---------------------------------------------------------------------------
// Pass 1: functions returning Status / Result<T>.

bool AtDeclarationPosition(const CodeView& v, size_t ci) {
  if (ci == 0) return true;
  const Token& prev = v.Tok(ci - 1);
  if (prev.kind == TokenKind::kPreproc) return true;
  if (prev.kind == TokenKind::kPunct) {
    const std::string& t = prev.text;
    return t == ";" || t == "{" || t == "}" || t == ":" || t == "]";
  }
  if (prev.kind == TokenKind::kIdent) {
    const std::string& t = prev.text;
    return t == "static" || t == "inline" || t == "virtual" ||
           t == "constexpr" || t == "explicit" || t == "friend" ||
           t == "extern";
  }
  return false;
}

// Collects function names by declared return type: Status/Result<T>
// declarations land in `status_out`, void declarations in `void_out`.
// R1 matches call sites by bare name, so a name declared BOTH ways
// (e.g. BoundedAlloc::Reserve vs PointCloud::Reserve) is ambiguous; such
// names are subtracted below and their Status overloads are instead
// enforced at compile time by [[nodiscard]] under DBGC_WERROR.
void CollectFromFile(const SourceFile& file, std::set<std::string>* status_out,
                     std::set<std::string>* void_out) {
  const CodeView v = MakeCodeView(file.tokens);
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!v.IsIdent(ci)) continue;
    const std::string& t = v.Tok(ci).text;
    if (t != "Status" && t != "Result" && t != "void") continue;
    if (!AtDeclarationPosition(v, ci)) continue;
    size_t k = ci + 1;
    if (t == "Result") {
      if (!v.Is(k, "<")) continue;
      k = SkipAngles(v, k);
    }
    // Optional Class:: qualifiers, then the function name and its "(".
    while (v.IsIdent(k) && v.Is(k + 1, "::")) k += 2;
    if (!v.IsIdent(k) || !v.Is(k + 1, "(")) continue;
    const std::string& name = v.Tok(k).text;
    if (name == "Status" || name == "Result" || name == "operator") continue;
    (t == "void" ? void_out : status_out)->insert(name);
  }
}

// ---------------------------------------------------------------------------
// R1: unchecked Status/Result-returning calls.

bool IsStatementStart(const CodeView& v, size_t ci) {
  if (ci == 0) return true;
  const Token& prev = v.Tok(ci - 1);
  if (prev.kind == TokenKind::kPreproc) return true;
  if (prev.kind == TokenKind::kPunct) {
    const std::string& t = prev.text;
    return t == ";" || t == "{" || t == "}" || t == ")";
  }
  return prev.kind == TokenKind::kIdent && prev.text == "else";
}

void CheckR1(const SourceFile& file, const CodeView& v,
             const std::set<std::string>& status_fns,
             std::vector<Diagnostic>* diags) {
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!IsStatementStart(v, ci)) continue;
    size_t start = ci;
    // `(void)` prefix: the call result is explicitly discarded. Skip the
    // whole statement so its ")" is not mistaken for a new statement start.
    if (v.Is(start, "(") && v.Is(start + 1, "void") && v.Is(start + 2, ")")) {
      size_t k = start + 3;
      while (k < v.size() && !v.Is(k, ";")) ++k;
      ci = k;
      continue;
    }
    size_t callee;
    const size_t after_chain = MatchIdentChain(v, start, &callee);
    if (after_chain == start || !v.Is(after_chain, "(")) continue;
    const size_t after_call = SkipParens(v, after_chain);
    if (!v.Is(after_call, ";")) continue;  // Part of a larger expression.
    const std::string& name = v.Tok(callee).text;
    if (status_fns.count(name) == 0) continue;
    diags->push_back(Diagnostic{
        file.path, v.Tok(start).line, "R1",
        "result of Status/Result-returning call '" + name +
            "' is ignored; check it, wrap in DBGC_RETURN_NOT_OK, or cast "
            "to (void)"});
  }
}

// ---------------------------------------------------------------------------
// Function segmentation (for R2/R3).

struct FunctionSpan {
  std::string name;
  size_t body_begin;  // Code index of "{".
  size_t body_end;    // Code index just past the matching "}".
};

// Classifies the "{" at `ci` by walking backwards over constructor
// initializer lists, cv/ref/noexcept qualifiers, and trailing return types
// until the parameter list is found. Returns the function name, or "" when
// the brace opens something other than a function body.
std::string FunctionNameForBrace(const CodeView& v, size_t ci) {
  size_t k = ci;
  int steps = 0;
  while (k > 0 && ++steps < 256) {
    --k;
    const Token& t = v.Tok(k);
    if (t.kind == TokenKind::kPreproc || t.kind == TokenKind::kString ||
        t.kind == TokenKind::kChar || t.kind == TokenKind::kNumber) {
      // Numbers / literals appear inside init lists; skip.
      continue;
    }
    const std::string& s = t.text;
    if (t.kind == TokenKind::kIdent) {
      if (s == "else" || s == "do" || s == "try" || s == "namespace" ||
          s == "class" || s == "struct" || s == "union" || s == "enum") {
        return "";
      }
      continue;  // Qualifiers (const, noexcept, override) or init names.
    }
    if (s == "}" || s == ")" || s == ">" || s == "]") {
      // Balanced groups: init-list entries a_{1} / a_(1), the parameter
      // list itself, template args in trailing return types, attributes.
      const char open = s == "}" ? '{' : s == ")" ? '(' : s == ">" ? '<' : '[';
      const char close = s[0];
      int depth = 0;
      while (k > 0) {
        const std::string& u = v.Tok(k).text;
        if (u.size() == 1 && u[0] == close) ++depth;
        if (u.size() == 1 && u[0] == open && --depth == 0) break;
        if (u == ">>" && close == '>') depth += 2;
        --k;
      }
      if (close != ')') continue;
      // A ")" group is the parameter list iff the token before its "(" is a
      // plain identifier not reached via ":" or "," (those are ctor init
      // entries) and not a control keyword (if/for/while/...).
      if (k == 0) return "";
      const Token& before = v.Tok(k - 1);
      if (before.kind != TokenKind::kIdent) {
        // E.g. lambda "](...)", cast "(...)(...)": not a function def.
        return "";
      }
      if (IsControlKeyword(before.text)) return "";
      const bool init_entry =
          k >= 2 && (v.Tok(k - 2).text == ":" || v.Tok(k - 2).text == ",") &&
          // Distinguish "Foo::Foo() :" (param list) from ": a_(1)" by
          // whether more init-ish tokens continue leftwards; a parameter
          // list is preceded by the function name which is preceded by
          // "::" / type tokens, never by ":" or ",". Heuristic: treat as
          // init entry and keep scanning.
          true;
      if (init_entry) continue;
      return before.text;
    }
    if (s == ":" || s == "," || s == "&" || s == "&&" || s == "*" ||
        s == "->" || s == "::" || s == "...") {
      continue;  // Init-list separators, ref-qualifiers, trailing return.
    }
    // Any other punctuation (";", "=", "{", "(", ...) means this brace
    // opens an initializer, a class, or a compound statement.
    return "";
  }
  return "";
}

size_t FindMatchingBrace(const CodeView& v, size_t ci) {
  int depth = 0;
  for (size_t k = ci; k < v.size(); ++k) {
    const std::string& t = v.Tok(k).text;
    if (v.Tok(k).kind != TokenKind::kPunct) continue;
    if (t == "{") ++depth;
    if (t == "}" && --depth == 0) return k + 1;
  }
  return v.size();
}

std::vector<FunctionSpan> SegmentFunctions(const CodeView& v) {
  std::vector<FunctionSpan> spans;
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!v.Is(ci, "{")) continue;
    const std::string name = FunctionNameForBrace(v, ci);
    if (name.empty()) continue;
    spans.push_back(FunctionSpan{name, ci, FindMatchingBrace(v, ci)});
  }
  return spans;
}

const char* const kDecodeMarkers[] = {"Decode", "Decompress", "Deserialize",
                                      "Parse",  "Receive",    "Read",
                                      "Recv",   "Open",       "Load"};

bool IsDecodePath(const std::string& name) {
  for (const char* m : kDecodeMarkers) {
    if (name.find(m) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// R2: unguarded allocations in decode paths.

// Splits the top level of a balanced (...) argument list beginning at
// `open` into per-argument code-index ranges.
std::vector<std::pair<size_t, size_t>> SplitArgs(const CodeView& v,
                                                 size_t open) {
  std::vector<std::pair<size_t, size_t>> args;
  const size_t end = SkipParens(v, open) - 1;  // Index of ")".
  if (end <= open + 1) return args;            // Empty list.
  size_t start = open + 1;
  int depth = 0;
  for (size_t k = open + 1; k < end; ++k) {
    const std::string& t = v.Tok(k).text;
    if (t == "(" || t == "{" || t == "[") ++depth;
    if (t == ")" || t == "}" || t == "]") --depth;
    if (t == "<") ++depth;  // Approximate; template args in calls are rare.
    if (t == ">") --depth;
    if (t == "," && depth == 0) {
      args.emplace_back(start, k);
      start = k + 1;
    }
  }
  args.emplace_back(start, end);
  return args;
}

// An allocation size argument is trusted when it is a numeric constant or
// the size()/remaining() of an object already in memory.
bool IsTrustedSizeArg(const CodeView& v, size_t begin, size_t end) {
  if (begin >= end) return false;
  bool all_numbers = true;
  for (size_t k = begin; k < end; ++k) {
    if (v.Tok(k).kind != TokenKind::kNumber) all_numbers = false;
  }
  if (all_numbers) return true;
  // ident-chain ending in .size() / .remaining() / .bit_position().
  size_t last = 0;
  const size_t after = MatchIdentChain(v, begin, &last);
  if (after != begin && v.Is(after, "(") && SkipParens(v, after) == end) {
    const std::string& m = v.Tok(last).text;
    return m == "size" || m == "remaining" || m == "bit_position" ||
           m == "num_leaves";
  }
  return false;
}

void CheckR2Body(const SourceFile& file, const CodeView& v,
                 const FunctionSpan& fn, std::vector<Diagnostic>* diags) {
  for (size_t ci = fn.body_begin; ci < fn.body_end; ++ci) {
    // new-expressions: `new T[n]` in a decode path is always flagged.
    if (v.IsIdent(ci) && v.Tok(ci).text == "new") {
      for (size_t k = ci + 1; k < std::min(fn.body_end, ci + 16); ++k) {
        if (v.Is(k, "(") || v.Is(k, ";")) break;
        if (v.Is(k, "[")) {
          diags->push_back(Diagnostic{
              file.path, v.Tok(ci).line, "R2",
              "raw array new in decode path '" + fn.name +
                  "'; use a container sized through BoundedAlloc"});
          break;
        }
      }
    }
    // vector<T> name(n, ...) constructors sized from an expression.
    if (v.IsIdent(ci) && v.Tok(ci).text == "vector" && v.Is(ci + 1, "<")) {
      const size_t after_t = SkipAngles(v, ci + 1);
      if (v.IsIdent(after_t) && v.Is(after_t + 1, "(")) {
        const auto args = SplitArgs(v, after_t + 1);
        if (!args.empty() && args.size() <= 2 &&
            !IsTrustedSizeArg(v, args[0].first, args[0].second)) {
          diags->push_back(Diagnostic{
              file.path, v.Tok(ci).line, "R2",
              "vector sized at construction from decoded data in '" +
                  fn.name + "'; use BoundedAlloc::Resize"});
        }
      }
    }
    // .reserve / .resize / .assign / .Reserve / .Resize member calls. The
    // guard API takes what/min-bytes arguments, so arity <= 2 plus a
    // non-trusted size expression identifies the raw container calls.
    if (v.Tok(ci).kind == TokenKind::kPunct &&
        (v.Tok(ci).text == "." || v.Tok(ci).text == "->") &&
        v.IsIdent(ci + 1) && v.Is(ci + 2, "(")) {
      const std::string& m = v.Tok(ci + 1).text;
      if (m != "reserve" && m != "resize" && m != "assign" &&
          m != "Reserve" && m != "Resize") {
        continue;
      }
      const auto args = SplitArgs(v, ci + 2);
      if (args.empty() || args.size() > 2) continue;  // Guard API arity.
      if (IsTrustedSizeArg(v, args[0].first, args[0].second)) continue;
      diags->push_back(Diagnostic{
          file.path, v.Tok(ci + 1).line, "R2",
          "allocation '" + m + "' sized from decoded data in decode path '" +
              fn.name + "'; route through BoundedAlloc (common/contracts.h)"});
    }
  }
}

// ---------------------------------------------------------------------------
// R3: raw size arithmetic on reader-tainted variables.

bool IsTaintSource(const std::string& callee) {
  // Floating-point reads carry geometry, not sizes: arithmetic on them
  // cannot wrap an allocation count, so they do not taint.
  if (callee == "ReadDouble" || callee == "ReadFloat") return false;
  return callee.rfind("Read", 0) == 0 || callee.rfind("GetVarint", 0) == 0 ||
         callee.rfind("GetSignedVarint", 0) == 0;
}

bool IsSanitizer(const std::string& callee) {
  return callee == "DBGC_BOUND" || callee.rfind("Checked", 0) == 0 ||
         callee == "BoundedAlloc" || callee == "Reserve" ||
         callee == "Resize" || callee == "ReserveSpeculative" ||
         callee == "Check" || callee == "Fits" || callee == "min" ||
         callee == "max" || callee == "clamp";
}

void CheckR3Body(const SourceFile& file, const CodeView& v,
                 const FunctionSpan& fn, std::vector<Diagnostic>* diags) {
  std::set<std::string> tainted;
  for (size_t ci = fn.body_begin; ci < fn.body_end; ++ci) {
    // Calls: taint "&x" out-params of Read*/GetVarint*; sanitize arguments
    // of DBGC_BOUND / Checked* / BoundedAlloc methods / std::min-style
    // clamps.
    size_t callee;
    const size_t after_chain = MatchIdentChain(v, ci, &callee);
    bool handled_call = false;
    if (after_chain != ci) {
      size_t open = after_chain;
      if (v.Is(open, "<")) open = SkipAngles(v, open);  // std::min<uint64_t>.
      if (v.Is(open, "(")) {
        const std::string& name = v.Tok(callee).text;
        if (IsTaintSource(name)) {
          const auto args = SplitArgs(v, open);
          // Free-function readers (GetVarint64(&reader, &out)) pass the
          // reader itself by address as the first argument; only the
          // remaining arguments are decoded out-params.
          const bool free_reader = name.rfind("GetVarint", 0) == 0 ||
                                   name.rfind("GetSignedVarint", 0) == 0;
          for (size_t ai = free_reader ? 1 : 0; ai < args.size(); ++ai) {
            const auto& [abegin, aend] = args[ai];
            if (aend - abegin == 2 && v.Is(abegin, "&") &&
                v.IsIdent(abegin + 1)) {
              tainted.insert(v.Tok(abegin + 1).text);
            }
          }
          handled_call = true;
        } else if (IsSanitizer(name)) {
          for (const auto& [abegin, aend] : SplitArgs(v, open)) {
            for (size_t k = abegin; k < aend; ++k) {
              if (v.IsIdent(k)) tainted.erase(v.Tok(k).text);
            }
          }
          handled_call = true;
        }
      }
      if (handled_call) {
        ci = after_chain - 1;  // Operators inside the call still get seen.
        continue;
      }
    }
    // Binary * / + / << (and compound forms) touching a tainted variable.
    if (v.Tok(ci).kind != TokenKind::kPunct) continue;
    const std::string& op = v.Tok(ci).text;
    const bool compound = op == "+=" || op == "*=" || op == "<<=";
    if (op != "*" && op != "+" && op != "<<" && !compound) continue;
    if (ci == 0 || ci + 1 >= v.size()) continue;
    const Token& lhs = v.Tok(ci - 1);
    const Token& rhs = v.Tok(ci + 1);
    // Unary +/* (prefix) have an operator or "(" on their left.
    const bool binary = lhs.kind == TokenKind::kIdent ||
                        lhs.kind == TokenKind::kNumber ||
                        lhs.text == ")" || lhs.text == "]";
    if (!binary) continue;
    for (const Token* side : {&lhs, &rhs}) {
      if (side->kind == TokenKind::kIdent && tainted.count(side->text)) {
        diags->push_back(Diagnostic{
            file.path, v.Tok(ci).line, "R3",
            "raw '" + op + "' on untrusted size '" + side->text +
                "' in '" + fn.name +
                "'; use CheckedMul/CheckedAdd/CheckedShl (common/"
                "safe_math.h) or bound it first with DBGC_BOUND"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R4: assert() in library code.

void CheckR4(const SourceFile& file, const CodeView& v,
             std::vector<Diagnostic>* diags) {
  if (file.is_test) return;
  for (size_t ci = 0; ci + 1 < v.size(); ++ci) {
    if (v.IsIdent(ci) && v.Tok(ci).text == "assert" && v.Is(ci + 1, "(")) {
      diags->push_back(Diagnostic{
          file.path, v.Tok(ci).line, "R4",
          "assert() in library code; use DBGC_CHECK (common/check.h) for "
          "invariants or return Status::Corruption for untrusted input"});
    }
  }
}

// ---------------------------------------------------------------------------
// R5: header self-containment.

struct StdRequirement {
  const char* ident;
  const char* header;
};

const StdRequirement kStdRequirements[] = {
    {"vector", "vector"},
    {"string", "string"},
    {"optional", "optional"},
    {"unordered_map", "unordered_map"},
    {"unordered_set", "unordered_set"},
    {"map", "map"},
    {"set", "set"},
    {"deque", "deque"},
    {"array", "array"},
    {"function", "functional"},
    {"unique_ptr", "memory"},
    {"shared_ptr", "memory"},
    {"make_unique", "memory"},
    {"make_shared", "memory"},
    {"atomic", "atomic"},
    {"mutex", "mutex"},
    {"lock_guard", "mutex"},
    {"unique_lock", "mutex"},
    {"thread", "thread"},
    {"condition_variable", "condition_variable"},
};

std::string ExpectedGuard(const std::string& rel_path) {
  std::string guard = "DBGC_";
  for (char c : rel_path) {
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

// First whitespace-separated word after the directive name.
std::string DirectiveArg(const std::string& line, size_t after) {
  size_t b = line.find_first_not_of(" \t", after);
  if (b == std::string::npos) return "";
  size_t e = line.find_first_of(" \t\r", b);
  return line.substr(b, e == std::string::npos ? std::string::npos : e - b);
}

void CheckR5(const SourceFile& file, const CodeView& v,
             std::vector<Diagnostic>* diags) {
  if (!file.is_header) return;

  // Gather directives in order plus the set of directly included headers.
  std::vector<std::pair<std::string, int>> directives;  // (full text, line).
  std::set<std::string> includes;
  for (size_t ci = 0; ci < v.size(); ++ci) {
    const Token& t = v.Tok(ci);
    if (t.kind != TokenKind::kPreproc) continue;
    directives.emplace_back(t.text, t.line);
    size_t p = t.text.find("include");
    if (p != std::string::npos) {
      size_t b = t.text.find_first_of("<\"", p);
      if (b != std::string::npos) {
        size_t e = t.text.find_first_of(">\"", b + 1);
        if (e != std::string::npos) {
          includes.insert(t.text.substr(b + 1, e - b - 1));
        }
      }
    }
  }

  // Include guard: #ifndef G / #define G open the file, #endif closes it.
  std::string guard;
  if (directives.size() < 3 ||
      directives[0].first.find("ifndef") == std::string::npos ||
      directives[1].first.find("define") == std::string::npos) {
    diags->push_back(Diagnostic{
        file.path, 1, "R5",
        "header does not open with an #ifndef/#define include guard"});
  } else {
    const std::string opened = DirectiveArg(
        directives[0].first, directives[0].first.find("ifndef") + 6);
    const std::string defined = DirectiveArg(
        directives[1].first, directives[1].first.find("define") + 6);
    if (opened != defined) {
      diags->push_back(Diagnostic{
          file.path, directives[1].second, "R5",
          "include guard #define '" + defined + "' does not match #ifndef '" +
              opened + "'"});
    } else {
      guard = opened;
    }
    if (directives.back().first.find("endif") == std::string::npos) {
      diags->push_back(Diagnostic{file.path, directives.back().second, "R5",
                                  "header does not close with #endif"});
    }
    if (!file.rel_path.empty() && !guard.empty()) {
      const std::string expected = ExpectedGuard(file.rel_path);
      if (guard != expected) {
        diags->push_back(Diagnostic{
            file.path, directives[0].second, "R5",
            "include guard '" + guard + "' should be '" + expected + "'"});
      }
    }
  }

  // Self-containment: std:: types used must be included directly, and
  // fixed-width integer types require <cstdint>.
  std::set<std::string> reported;
  for (size_t ci = 0; ci + 2 < v.size(); ++ci) {
    if (v.IsIdent(ci) && v.Tok(ci).text == "std" && v.Is(ci + 1, "::") &&
        v.IsIdent(ci + 2)) {
      const std::string& used = v.Tok(ci + 2).text;
      for (const StdRequirement& req : kStdRequirements) {
        if (used == req.ident && includes.count(req.header) == 0 &&
            reported.insert(req.header).second) {
          diags->push_back(Diagnostic{
              file.path, v.Tok(ci).line, "R5",
              "header uses std::" + used + " but does not include <" +
                  req.header + ">"});
        }
      }
    }
  }
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!v.IsIdent(ci)) continue;
    const std::string& t = v.Tok(ci).text;
    const bool fixed_width =
        (t.size() >= 6 && t.compare(t.size() - 2, 2, "_t") == 0 &&
         (t.rfind("uint", 0) == 0 || t.rfind("int", 0) == 0));
    if (fixed_width && includes.count("cstdint") == 0) {
      if (reported.insert("cstdint").second) {
        diags->push_back(Diagnostic{
            file.path, v.Tok(ci).line, "R5",
            "header uses " + t + " but does not include <cstdint>"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R6: ad-hoc monotonic clock reads. src/obs/trace.h is the library's one
// sanctioned steady_clock call site; everything else times through a span
// or obs::MonotonicSeconds so the latency is visible in the registry
// (docs/OBSERVABILITY.md). Tests/tools/benches stay free to time directly.

void CheckR6(const SourceFile& file, const CodeView& v,
             std::vector<Diagnostic>* diags) {
  if (file.is_test) return;
  if (file.rel_path.rfind("obs/", 0) == 0) return;  // The wrapper itself.
  for (size_t ci = 0; ci + 2 < v.size(); ++ci) {
    if (v.IsIdent(ci) && v.Tok(ci).text == "steady_clock" &&
        v.Is(ci + 1, "::") && v.Is(ci + 2, "now")) {
      diags->push_back(Diagnostic{
          file.path, v.Tok(ci).line, "R6",
          "direct steady_clock::now() in library code; time through "
          "obs::TraceSpan/obs::ScopedTimer or obs::MonotonicSeconds "
          "(src/obs/trace.h) so the latency reaches the metrics registry"});
    }
  }
}

// ---------------------------------------------------------------------------
// R7: direct construction of a concrete entropy coder. The container's
// version byte (docs/ENTROPY.md) only stays authoritative if every stream
// is produced and consumed through the EntropyEncoder/EntropyDecoder
// facade, which selects the backend the byte records. Library code that
// names ArithmeticEncoder/RangeDecoder/etc. directly bakes in one backend
// and silently bypasses the dispatch. src/entropy/ itself (the facade and
// the coders) is exempt, as are tests/tools/benches.

void CheckR7(const SourceFile& file, const CodeView& v,
             std::vector<Diagnostic>* diags) {
  if (file.is_test) return;
  if (file.rel_path.rfind("entropy/", 0) == 0) return;  // The facade itself.
  static const char* kConcrete[] = {"ArithmeticEncoder", "ArithmeticDecoder",
                                    "RangeEncoder", "RangeDecoder"};
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!v.IsIdent(ci)) continue;
    const std::string& t = v.Tok(ci).text;
    bool concrete = false;
    for (const char* name : kConcrete) concrete |= (t == name);
    if (!concrete) continue;
    diags->push_back(Diagnostic{
        file.path, v.Tok(ci).line, "R7",
        "direct use of concrete entropy coder " + t +
            " in library code; go through EntropyEncoder/EntropyDecoder "
            "(src/entropy/entropy_coder.h) so the container version byte "
            "keeps selecting the backend (docs/ENTROPY.md)"});
  }
}

// ---------------------------------------------------------------------------
// Suppressions: // DBGC_LINT_ALLOW(Rn): reason

struct Suppressions {
  // line -> rules allowed on that line (and on the following line when the
  // comment stands alone).
  std::map<int, std::set<std::string>> by_line;
  std::vector<Diagnostic> malformed;
};

Suppressions CollectSuppressions(const SourceFile& file) {
  Suppressions sup;
  // Lines that contain code, to decide whether an ALLOW comment stands
  // alone (applies to the next line) or trails code (applies to its own).
  std::set<int> code_lines;
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::kComment) code_lines.insert(t.line);
  }
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::kComment) continue;
    size_t pos = 0;
    while ((pos = t.text.find("DBGC_LINT_ALLOW", pos)) != std::string::npos) {
      const size_t open = t.text.find('(', pos);
      const size_t close =
          open == std::string::npos ? std::string::npos
                                    : t.text.find(')', open);
      bool ok = open != std::string::npos && close != std::string::npos;
      std::string rule;
      if (ok) {
        rule = t.text.substr(open + 1, close - open - 1);
        ok = rule.size() == 2 && rule[0] == 'R' && rule[1] >= '1' &&
             rule[1] <= '7';
      }
      if (ok) {
        // A reason after "):" is mandatory.
        size_t colon = t.text.find(':', close);
        ok = colon != std::string::npos &&
             t.text.find_first_not_of(" \t", colon + 1) != std::string::npos;
      }
      if (!ok) {
        sup.malformed.push_back(Diagnostic{
            file.path, t.line, "lint",
            "malformed suppression; use // DBGC_LINT_ALLOW(Rn): reason"});
      } else {
        const int target =
            code_lines.count(t.line) ? t.line : t.line + 1;
        sup.by_line[target].insert(rule);
      }
      pos = close == std::string::npos ? t.text.size() : close;
    }
  }
  return sup;
}

}  // namespace

std::set<std::string> CollectStatusFunctions(
    const std::vector<SourceFile>& files) {
  std::set<std::string> fns;
  std::set<std::string> void_fns;
  for (const SourceFile& f : files) CollectFromFile(f, &fns, &void_fns);
  // Drop ambiguous names (declared Status in one place, void in another):
  // flagging them by bare name would misfire on every void call site.
  for (const std::string& name : void_fns) fns.erase(name);
  return fns;
}

std::vector<Diagnostic> AnalyzeFile(const SourceFile& file,
                                    const std::set<std::string>& status_fns) {
  const CodeView v = MakeCodeView(file.tokens);
  std::vector<Diagnostic> diags;

  CheckR1(file, v, status_fns, &diags);
  for (const FunctionSpan& fn : SegmentFunctions(v)) {
    if (!IsDecodePath(fn.name)) continue;
    CheckR2Body(file, v, fn, &diags);
    CheckR3Body(file, v, fn, &diags);
  }
  CheckR4(file, v, &diags);
  CheckR5(file, v, &diags);
  CheckR6(file, v, &diags);
  CheckR7(file, v, &diags);

  const Suppressions sup = CollectSuppressions(file);
  std::vector<Diagnostic> kept;
  for (const Diagnostic& d : diags) {
    auto it = sup.by_line.find(d.line);
    if (it != sup.by_line.end() && it->second.count(d.rule)) continue;
    kept.push_back(d);
  }
  kept.insert(kept.end(), sup.malformed.begin(), sup.malformed.end());
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  return kept;
}

}  // namespace dbgc_lint
