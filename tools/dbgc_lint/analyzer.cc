#include "analyzer.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace dbgc_lint {

namespace {

// ---------------------------------------------------------------------------
// Token-stream helpers. Rules operate on `code`: the indices of non-comment
// tokens, in order, so comments never break adjacency while staying
// available for suppression scanning.

struct CodeView {
  const std::vector<Token>* all;
  std::vector<size_t> code;  // Indices into *all, comments excluded.

  const Token& Tok(size_t ci) const { return (*all)[code[ci]]; }
  size_t size() const { return code.size(); }
  bool Is(size_t ci, const char* text) const {
    return ci < code.size() && Tok(ci).text == text;
  }
  bool IsIdent(size_t ci) const {
    return ci < code.size() && Tok(ci).kind == TokenKind::kIdent;
  }
};

CodeView MakeCodeView(const std::vector<Token>& tokens) {
  CodeView v;
  v.all = &tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kComment) v.code.push_back(i);
  }
  return v;
}

// Advances past a balanced (...) starting at `ci` (which must be "(").
// Returns the index just past the matching ")". Preprocessor tokens are
// treated as opaque. On imbalance returns v.size().
size_t SkipParens(const CodeView& v, size_t ci) {
  int depth = 0;
  for (; ci < v.size(); ++ci) {
    const std::string& t = v.Tok(ci).text;
    if (v.Tok(ci).kind != TokenKind::kPunct) continue;
    if (t == "(") ++depth;
    if (t == ")" && --depth == 0) return ci + 1;
  }
  return v.size();
}

// Advances past a balanced <...> starting at `ci` (which must be "<").
// ">>" closes two levels. Gives up (returns ci + 1) on expressions that are
// clearly not template argument lists.
size_t SkipAngles(const CodeView& v, size_t ci) {
  int depth = 0;
  const size_t limit = std::min(v.size(), ci + 64);
  for (size_t k = ci; k < limit; ++k) {
    const std::string& t = v.Tok(k).text;
    if (t == "<") ++depth;
    if (t == ">") {
      if (--depth == 0) return k + 1;
    }
    if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return k + 1;
    }
    if (t == ";" || t == "{") break;  // Not a template argument list.
  }
  return ci + 1;
}

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "do" || s == "else" || s == "case" || s == "new" ||
         s == "delete" || s == "throw" || s == "static_assert" ||
         s == "decltype" || s == "requires" || s == "alignas";
}

// Matches an identifier chain `a::b.c->d` starting at `ci`. On success sets
// *last_ident to the final identifier's code index and returns the index of
// the token after the chain; otherwise returns ci.
size_t MatchIdentChain(const CodeView& v, size_t ci, size_t* last_ident) {
  if (!v.IsIdent(ci) || IsControlKeyword(v.Tok(ci).text)) return ci;
  *last_ident = ci;
  size_t k = ci + 1;
  while (k + 1 < v.size() && v.Tok(k).kind == TokenKind::kPunct &&
         (v.Tok(k).text == "::" || v.Tok(k).text == "." ||
          v.Tok(k).text == "->") &&
         v.IsIdent(k + 1)) {
    *last_ident = k + 1;
    k += 2;
  }
  return k;
}

// ---------------------------------------------------------------------------
// Pass 1: functions returning Status / Result<T>.

bool AtDeclarationPosition(const CodeView& v, size_t ci) {
  if (ci == 0) return true;
  const Token& prev = v.Tok(ci - 1);
  if (prev.kind == TokenKind::kPreproc) return true;
  if (prev.kind == TokenKind::kPunct) {
    const std::string& t = prev.text;
    return t == ";" || t == "{" || t == "}" || t == ":" || t == "]";
  }
  if (prev.kind == TokenKind::kIdent) {
    const std::string& t = prev.text;
    return t == "static" || t == "inline" || t == "virtual" ||
           t == "constexpr" || t == "explicit" || t == "friend" ||
           t == "extern";
  }
  return false;
}

// Collects function names by declared return type: Status/Result<T>
// declarations land in `status_out`, void declarations in `void_out`.
// R1 matches call sites by bare name, so a name declared BOTH ways
// (e.g. BoundedAlloc::Reserve vs PointCloud::Reserve) is ambiguous; such
// names are subtracted below and their Status overloads are instead
// enforced at compile time by [[nodiscard]] under DBGC_WERROR.
void CollectFromFile(const SourceFile& file, std::set<std::string>* status_out,
                     std::set<std::string>* void_out) {
  const CodeView v = MakeCodeView(file.tokens);
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!v.IsIdent(ci)) continue;
    const std::string& t = v.Tok(ci).text;
    if (t != "Status" && t != "Result" && t != "void") continue;
    if (!AtDeclarationPosition(v, ci)) continue;
    size_t k = ci + 1;
    if (t == "Result") {
      if (!v.Is(k, "<")) continue;
      k = SkipAngles(v, k);
    }
    // Optional Class:: qualifiers, then the function name and its "(".
    while (v.IsIdent(k) && v.Is(k + 1, "::")) k += 2;
    if (!v.IsIdent(k) || !v.Is(k + 1, "(")) continue;
    const std::string& name = v.Tok(k).text;
    if (name == "Status" || name == "Result" || name == "operator") continue;
    (t == "void" ? void_out : status_out)->insert(name);
  }
}

// ---------------------------------------------------------------------------
// R1: unchecked Status/Result-returning calls.

bool IsStatementStart(const CodeView& v, size_t ci) {
  if (ci == 0) return true;
  const Token& prev = v.Tok(ci - 1);
  if (prev.kind == TokenKind::kPreproc) return true;
  if (prev.kind == TokenKind::kPunct) {
    const std::string& t = prev.text;
    return t == ";" || t == "{" || t == "}" || t == ")";
  }
  return prev.kind == TokenKind::kIdent && prev.text == "else";
}

void CheckR1(const SourceFile& file, const CodeView& v,
             const std::set<std::string>& status_fns,
             std::vector<Diagnostic>* diags) {
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!IsStatementStart(v, ci)) continue;
    size_t start = ci;
    // `(void)` prefix: the call result is explicitly discarded. Skip the
    // whole statement so its ")" is not mistaken for a new statement start.
    if (v.Is(start, "(") && v.Is(start + 1, "void") && v.Is(start + 2, ")")) {
      size_t k = start + 3;
      while (k < v.size() && !v.Is(k, ";")) ++k;
      ci = k;
      continue;
    }
    size_t callee;
    const size_t after_chain = MatchIdentChain(v, start, &callee);
    if (after_chain == start || !v.Is(after_chain, "(")) continue;
    const size_t after_call = SkipParens(v, after_chain);
    if (!v.Is(after_call, ";")) continue;  // Part of a larger expression.
    const std::string& name = v.Tok(callee).text;
    if (status_fns.count(name) == 0) continue;
    diags->push_back(Diagnostic{
        file.path, v.Tok(start).line, "R1",
        "result of Status/Result-returning call '" + name +
            "' is ignored; check it, wrap in DBGC_RETURN_NOT_OK, or cast "
            "to (void)"});
  }
}

// ---------------------------------------------------------------------------
// Function segmentation (for R2/R3).

struct FunctionSpan {
  std::string name;
  size_t body_begin;  // Code index of "{".
  size_t body_end;    // Code index just past the matching "}".
};

// Classifies the "{" at `ci` by walking backwards over constructor
// initializer lists, cv/ref/noexcept qualifiers, and trailing return types
// until the parameter list is found. Returns the function name, or "" when
// the brace opens something other than a function body.
std::string FunctionNameForBrace(const CodeView& v, size_t ci) {
  size_t k = ci;
  int steps = 0;
  while (k > 0 && ++steps < 256) {
    --k;
    const Token& t = v.Tok(k);
    if (t.kind == TokenKind::kPreproc || t.kind == TokenKind::kString ||
        t.kind == TokenKind::kChar || t.kind == TokenKind::kNumber) {
      // Numbers / literals appear inside init lists; skip.
      continue;
    }
    const std::string& s = t.text;
    if (t.kind == TokenKind::kIdent) {
      if (s == "else" || s == "do" || s == "try" || s == "namespace" ||
          s == "class" || s == "struct" || s == "union" || s == "enum") {
        return "";
      }
      continue;  // Qualifiers (const, noexcept, override) or init names.
    }
    if (s == "}" || s == ")" || s == ">" || s == "]") {
      // Balanced groups: init-list entries a_{1} / a_(1), the parameter
      // list itself, template args in trailing return types, attributes.
      const char open = s == "}" ? '{' : s == ")" ? '(' : s == ">" ? '<' : '[';
      const char close = s[0];
      int depth = 0;
      while (k > 0) {
        const std::string& u = v.Tok(k).text;
        if (u.size() == 1 && u[0] == close) ++depth;
        if (u.size() == 1 && u[0] == open && --depth == 0) break;
        if (u == ">>" && close == '>') depth += 2;
        --k;
      }
      if (close != ')') continue;
      // A ")" group is the parameter list iff the token before its "(" is a
      // plain identifier not reached via ":" or "," (those are ctor init
      // entries) and not a control keyword (if/for/while/...).
      if (k == 0) return "";
      const Token& before = v.Tok(k - 1);
      if (before.kind != TokenKind::kIdent) {
        // E.g. lambda "](...)", cast "(...)(...)": not a function def.
        return "";
      }
      if (IsControlKeyword(before.text)) return "";
      const bool init_entry =
          k >= 2 && (v.Tok(k - 2).text == ":" || v.Tok(k - 2).text == ",") &&
          // Distinguish "Foo::Foo() :" (param list) from ": a_(1)" by
          // whether more init-ish tokens continue leftwards; a parameter
          // list is preceded by the function name which is preceded by
          // "::" / type tokens, never by ":" or ",". Heuristic: treat as
          // init entry and keep scanning.
          true;
      if (init_entry) continue;
      if (before.text.rfind("DBGC_", 0) == 0) {
        // Trailing annotation (DBGC_REQUIRES(mu_) etc.) between the
        // parameter list and the body; its argument parens are not the
        // parameter list. Keep walking left.
        continue;
      }
      return before.text;
    }
    if (s == ":" || s == "," || s == "&" || s == "&&" || s == "*" ||
        s == "->" || s == "::" || s == "...") {
      continue;  // Init-list separators, ref-qualifiers, trailing return.
    }
    // Any other punctuation (";", "=", "{", "(", ...) means this brace
    // opens an initializer, a class, or a compound statement.
    return "";
  }
  return "";
}

size_t FindMatchingBrace(const CodeView& v, size_t ci) {
  int depth = 0;
  for (size_t k = ci; k < v.size(); ++k) {
    const std::string& t = v.Tok(k).text;
    if (v.Tok(k).kind != TokenKind::kPunct) continue;
    if (t == "{") ++depth;
    if (t == "}" && --depth == 0) return k + 1;
  }
  return v.size();
}

std::vector<FunctionSpan> SegmentFunctions(const CodeView& v) {
  std::vector<FunctionSpan> spans;
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!v.Is(ci, "{")) continue;
    const std::string name = FunctionNameForBrace(v, ci);
    if (name.empty()) continue;
    spans.push_back(FunctionSpan{name, ci, FindMatchingBrace(v, ci)});
  }
  return spans;
}

const char* const kDecodeMarkers[] = {"Decode", "Decompress", "Deserialize",
                                      "Parse",  "Receive",    "Read",
                                      "Recv",   "Open",       "Load"};

bool IsDecodePath(const std::string& name) {
  for (const char* m : kDecodeMarkers) {
    if (name.find(m) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// R2: unguarded allocations in decode paths.

// Splits the top level of a balanced (...) argument list beginning at
// `open` into per-argument code-index ranges.
std::vector<std::pair<size_t, size_t>> SplitArgs(const CodeView& v,
                                                 size_t open) {
  std::vector<std::pair<size_t, size_t>> args;
  const size_t end = SkipParens(v, open) - 1;  // Index of ")".
  if (end <= open + 1) return args;            // Empty list.
  size_t start = open + 1;
  int depth = 0;
  for (size_t k = open + 1; k < end; ++k) {
    const std::string& t = v.Tok(k).text;
    if (t == "(" || t == "{" || t == "[") ++depth;
    if (t == ")" || t == "}" || t == "]") --depth;
    if (t == "<") ++depth;  // Approximate; template args in calls are rare.
    if (t == ">") --depth;
    if (t == "," && depth == 0) {
      args.emplace_back(start, k);
      start = k + 1;
    }
  }
  args.emplace_back(start, end);
  return args;
}

// An allocation size argument is trusted when it is a numeric constant or
// the size()/remaining() of an object already in memory.
bool IsTrustedSizeArg(const CodeView& v, size_t begin, size_t end) {
  if (begin >= end) return false;
  bool all_numbers = true;
  for (size_t k = begin; k < end; ++k) {
    if (v.Tok(k).kind != TokenKind::kNumber) all_numbers = false;
  }
  if (all_numbers) return true;
  // ident-chain ending in .size() / .remaining() / .bit_position().
  size_t last = 0;
  const size_t after = MatchIdentChain(v, begin, &last);
  if (after != begin && v.Is(after, "(") && SkipParens(v, after) == end) {
    const std::string& m = v.Tok(last).text;
    return m == "size" || m == "remaining" || m == "bit_position" ||
           m == "num_leaves";
  }
  return false;
}

void CheckR2Body(const SourceFile& file, const CodeView& v,
                 const FunctionSpan& fn, std::vector<Diagnostic>* diags) {
  for (size_t ci = fn.body_begin; ci < fn.body_end; ++ci) {
    // new-expressions: `new T[n]` in a decode path is always flagged.
    if (v.IsIdent(ci) && v.Tok(ci).text == "new") {
      for (size_t k = ci + 1; k < std::min(fn.body_end, ci + 16); ++k) {
        if (v.Is(k, "(") || v.Is(k, ";")) break;
        if (v.Is(k, "[")) {
          diags->push_back(Diagnostic{
              file.path, v.Tok(ci).line, "R2",
              "raw array new in decode path '" + fn.name +
                  "'; use a container sized through BoundedAlloc"});
          break;
        }
      }
    }
    // vector<T> name(n, ...) constructors sized from an expression.
    if (v.IsIdent(ci) && v.Tok(ci).text == "vector" && v.Is(ci + 1, "<")) {
      const size_t after_t = SkipAngles(v, ci + 1);
      if (v.IsIdent(after_t) && v.Is(after_t + 1, "(")) {
        const auto args = SplitArgs(v, after_t + 1);
        if (!args.empty() && args.size() <= 2 &&
            !IsTrustedSizeArg(v, args[0].first, args[0].second)) {
          diags->push_back(Diagnostic{
              file.path, v.Tok(ci).line, "R2",
              "vector sized at construction from decoded data in '" +
                  fn.name + "'; use BoundedAlloc::Resize"});
        }
      }
    }
    // .reserve / .resize / .assign / .Reserve / .Resize member calls. The
    // guard API takes what/min-bytes arguments, so arity <= 2 plus a
    // non-trusted size expression identifies the raw container calls.
    if (v.Tok(ci).kind == TokenKind::kPunct &&
        (v.Tok(ci).text == "." || v.Tok(ci).text == "->") &&
        v.IsIdent(ci + 1) && v.Is(ci + 2, "(")) {
      const std::string& m = v.Tok(ci + 1).text;
      if (m != "reserve" && m != "resize" && m != "assign" &&
          m != "Reserve" && m != "Resize") {
        continue;
      }
      const auto args = SplitArgs(v, ci + 2);
      if (args.empty() || args.size() > 2) continue;  // Guard API arity.
      if (IsTrustedSizeArg(v, args[0].first, args[0].second)) continue;
      diags->push_back(Diagnostic{
          file.path, v.Tok(ci + 1).line, "R2",
          "allocation '" + m + "' sized from decoded data in decode path '" +
              fn.name + "'; route through BoundedAlloc (common/contracts.h)"});
    }
  }
}

// ---------------------------------------------------------------------------
// R3: raw size arithmetic on reader-tainted variables.

bool IsTaintSource(const std::string& callee) {
  // Floating-point reads carry geometry, not sizes: arithmetic on them
  // cannot wrap an allocation count, so they do not taint.
  if (callee == "ReadDouble" || callee == "ReadFloat") return false;
  return callee.rfind("Read", 0) == 0 || callee.rfind("GetVarint", 0) == 0 ||
         callee.rfind("GetSignedVarint", 0) == 0;
}

bool IsSanitizer(const std::string& callee) {
  return callee == "DBGC_BOUND" || callee.rfind("Checked", 0) == 0 ||
         callee == "BoundedAlloc" || callee == "Reserve" ||
         callee == "Resize" || callee == "ReserveSpeculative" ||
         callee == "Check" || callee == "Fits" || callee == "min" ||
         callee == "max" || callee == "clamp";
}

void CheckR3Body(const SourceFile& file, const CodeView& v,
                 const FunctionSpan& fn, std::vector<Diagnostic>* diags) {
  std::set<std::string> tainted;
  for (size_t ci = fn.body_begin; ci < fn.body_end; ++ci) {
    // Calls: taint "&x" out-params of Read*/GetVarint*; sanitize arguments
    // of DBGC_BOUND / Checked* / BoundedAlloc methods / std::min-style
    // clamps.
    size_t callee;
    const size_t after_chain = MatchIdentChain(v, ci, &callee);
    bool handled_call = false;
    if (after_chain != ci) {
      size_t open = after_chain;
      if (v.Is(open, "<")) open = SkipAngles(v, open);  // std::min<uint64_t>.
      if (v.Is(open, "(")) {
        const std::string& name = v.Tok(callee).text;
        if (IsTaintSource(name)) {
          const auto args = SplitArgs(v, open);
          // Free-function readers (GetVarint64(&reader, &out)) pass the
          // reader itself by address as the first argument; only the
          // remaining arguments are decoded out-params.
          const bool free_reader = name.rfind("GetVarint", 0) == 0 ||
                                   name.rfind("GetSignedVarint", 0) == 0;
          for (size_t ai = free_reader ? 1 : 0; ai < args.size(); ++ai) {
            const auto& [abegin, aend] = args[ai];
            if (aend - abegin == 2 && v.Is(abegin, "&") &&
                v.IsIdent(abegin + 1)) {
              tainted.insert(v.Tok(abegin + 1).text);
            }
          }
          handled_call = true;
        } else if (IsSanitizer(name)) {
          for (const auto& [abegin, aend] : SplitArgs(v, open)) {
            for (size_t k = abegin; k < aend; ++k) {
              if (v.IsIdent(k)) tainted.erase(v.Tok(k).text);
            }
          }
          handled_call = true;
        }
      }
      if (handled_call) {
        ci = after_chain - 1;  // Operators inside the call still get seen.
        continue;
      }
    }
    // Binary * / + / << (and compound forms) touching a tainted variable.
    if (v.Tok(ci).kind != TokenKind::kPunct) continue;
    const std::string& op = v.Tok(ci).text;
    const bool compound = op == "+=" || op == "*=" || op == "<<=";
    if (op != "*" && op != "+" && op != "<<" && !compound) continue;
    if (ci == 0 || ci + 1 >= v.size()) continue;
    const Token& lhs = v.Tok(ci - 1);
    const Token& rhs = v.Tok(ci + 1);
    // Unary +/* (prefix) have an operator or "(" on their left.
    const bool binary = lhs.kind == TokenKind::kIdent ||
                        lhs.kind == TokenKind::kNumber ||
                        lhs.text == ")" || lhs.text == "]";
    if (!binary) continue;
    for (const Token* side : {&lhs, &rhs}) {
      if (side->kind == TokenKind::kIdent && tainted.count(side->text)) {
        diags->push_back(Diagnostic{
            file.path, v.Tok(ci).line, "R3",
            "raw '" + op + "' on untrusted size '" + side->text +
                "' in '" + fn.name +
                "'; use CheckedMul/CheckedAdd/CheckedShl (common/"
                "safe_math.h) or bound it first with DBGC_BOUND"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R4: assert() in library code.

void CheckR4(const SourceFile& file, const CodeView& v,
             std::vector<Diagnostic>* diags) {
  if (file.kind == FileKind::kTest) return;
  for (size_t ci = 0; ci + 1 < v.size(); ++ci) {
    if (v.IsIdent(ci) && v.Tok(ci).text == "assert" && v.Is(ci + 1, "(")) {
      diags->push_back(Diagnostic{
          file.path, v.Tok(ci).line, "R4",
          "assert() in library code; use DBGC_CHECK (common/check.h) for "
          "invariants or return Status::Corruption for untrusted input"});
    }
  }
}

// ---------------------------------------------------------------------------
// R5: header self-containment.

struct StdRequirement {
  const char* ident;
  const char* header;
};

const StdRequirement kStdRequirements[] = {
    {"vector", "vector"},
    {"string", "string"},
    {"optional", "optional"},
    {"unordered_map", "unordered_map"},
    {"unordered_set", "unordered_set"},
    {"map", "map"},
    {"set", "set"},
    {"deque", "deque"},
    {"array", "array"},
    {"function", "functional"},
    {"unique_ptr", "memory"},
    {"shared_ptr", "memory"},
    {"make_unique", "memory"},
    {"make_shared", "memory"},
    {"atomic", "atomic"},
    {"mutex", "mutex"},
    {"lock_guard", "mutex"},
    {"unique_lock", "mutex"},
    {"thread", "thread"},
    {"condition_variable", "condition_variable"},
};

std::string ExpectedGuard(const std::string& rel_path) {
  std::string guard = "DBGC_";
  for (char c : rel_path) {
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

// First whitespace-separated word after the directive name.
std::string DirectiveArg(const std::string& line, size_t after) {
  size_t b = line.find_first_not_of(" \t", after);
  if (b == std::string::npos) return "";
  size_t e = line.find_first_of(" \t\r", b);
  return line.substr(b, e == std::string::npos ? std::string::npos : e - b);
}

void CheckR5(const SourceFile& file, const CodeView& v,
             std::vector<Diagnostic>* diags) {
  if (!file.is_header) return;

  // Gather directives in order plus the set of directly included headers.
  std::vector<std::pair<std::string, int>> directives;  // (full text, line).
  std::set<std::string> includes;
  for (size_t ci = 0; ci < v.size(); ++ci) {
    const Token& t = v.Tok(ci);
    if (t.kind != TokenKind::kPreproc) continue;
    directives.emplace_back(t.text, t.line);
    size_t p = t.text.find("include");
    if (p != std::string::npos) {
      size_t b = t.text.find_first_of("<\"", p);
      if (b != std::string::npos) {
        size_t e = t.text.find_first_of(">\"", b + 1);
        if (e != std::string::npos) {
          includes.insert(t.text.substr(b + 1, e - b - 1));
        }
      }
    }
  }

  // Include guard: #ifndef G / #define G open the file, #endif closes it.
  std::string guard;
  if (directives.size() < 3 ||
      directives[0].first.find("ifndef") == std::string::npos ||
      directives[1].first.find("define") == std::string::npos) {
    diags->push_back(Diagnostic{
        file.path, 1, "R5",
        "header does not open with an #ifndef/#define include guard"});
  } else {
    const std::string opened = DirectiveArg(
        directives[0].first, directives[0].first.find("ifndef") + 6);
    const std::string defined = DirectiveArg(
        directives[1].first, directives[1].first.find("define") + 6);
    if (opened != defined) {
      diags->push_back(Diagnostic{
          file.path, directives[1].second, "R5",
          "include guard #define '" + defined + "' does not match #ifndef '" +
              opened + "'"});
    } else {
      guard = opened;
    }
    if (directives.back().first.find("endif") == std::string::npos) {
      diags->push_back(Diagnostic{file.path, directives.back().second, "R5",
                                  "header does not close with #endif"});
    }
    if (!file.rel_path.empty() && !guard.empty()) {
      const std::string expected = ExpectedGuard(file.rel_path);
      if (guard != expected) {
        diags->push_back(Diagnostic{
            file.path, directives[0].second, "R5",
            "include guard '" + guard + "' should be '" + expected + "'"});
      }
    }
  }

  // Self-containment: std:: types used must be included directly, and
  // fixed-width integer types require <cstdint>.
  std::set<std::string> reported;
  for (size_t ci = 0; ci + 2 < v.size(); ++ci) {
    if (v.IsIdent(ci) && v.Tok(ci).text == "std" && v.Is(ci + 1, "::") &&
        v.IsIdent(ci + 2)) {
      const std::string& used = v.Tok(ci + 2).text;
      for (const StdRequirement& req : kStdRequirements) {
        if (used == req.ident && includes.count(req.header) == 0 &&
            reported.insert(req.header).second) {
          diags->push_back(Diagnostic{
              file.path, v.Tok(ci).line, "R5",
              "header uses std::" + used + " but does not include <" +
                  req.header + ">"});
        }
      }
    }
  }
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!v.IsIdent(ci)) continue;
    const std::string& t = v.Tok(ci).text;
    const bool fixed_width =
        (t.size() >= 6 && t.compare(t.size() - 2, 2, "_t") == 0 &&
         (t.rfind("uint", 0) == 0 || t.rfind("int", 0) == 0));
    if (fixed_width && includes.count("cstdint") == 0) {
      if (reported.insert("cstdint").second) {
        diags->push_back(Diagnostic{
            file.path, v.Tok(ci).line, "R5",
            "header uses " + t + " but does not include <cstdint>"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R6: ad-hoc monotonic clock reads. src/obs/trace.h is the library's one
// sanctioned steady_clock call site; everything else times through a span
// or obs::MonotonicSeconds so the latency is visible in the registry
// (docs/OBSERVABILITY.md). Tests stay free to time directly; tools and
// benches are linted too, with bench/bench_util.h allowlisted as the one
// sanctioned bench-local timer.

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void CheckR6(const SourceFile& file, const CodeView& v,
             std::vector<Diagnostic>* diags) {
  if (file.kind == FileKind::kTest) return;
  if (file.rel_path.rfind("obs/", 0) == 0) return;  // The wrapper itself.
  if (HasSuffix(file.path, "bench/bench_util.h")) return;  // Timer allowlist.
  for (size_t ci = 0; ci + 2 < v.size(); ++ci) {
    if (v.IsIdent(ci) && v.Tok(ci).text == "steady_clock" &&
        v.Is(ci + 1, "::") && v.Is(ci + 2, "now")) {
      diags->push_back(Diagnostic{
          file.path, v.Tok(ci).line, "R6",
          "direct steady_clock::now() in library code; time through "
          "obs::TraceSpan/obs::ScopedTimer or obs::MonotonicSeconds "
          "(src/obs/trace.h) so the latency reaches the metrics registry"});
    }
  }
}

// ---------------------------------------------------------------------------
// R7: direct construction of a concrete entropy coder. The container's
// version byte (docs/ENTROPY.md) only stays authoritative if every stream
// is produced and consumed through the EntropyEncoder/EntropyDecoder
// facade, which selects the backend the byte records. Library code that
// names ArithmeticEncoder/RangeDecoder/etc. directly bakes in one backend
// and silently bypasses the dispatch. src/entropy/ itself (the facade and
// the coders) is exempt, as are tests/tools/benches.

void CheckR7(const SourceFile& file, const CodeView& v,
             std::vector<Diagnostic>* diags) {
  if (file.rel_path.rfind("entropy/", 0) == 0) return;  // The facade itself.
  static const char* kConcrete[] = {"ArithmeticEncoder", "ArithmeticDecoder",
                                    "RangeEncoder", "RangeDecoder"};
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!v.IsIdent(ci)) continue;
    const std::string& t = v.Tok(ci).text;
    bool concrete = false;
    for (const char* name : kConcrete) concrete |= (t == name);
    if (!concrete) continue;
    diags->push_back(Diagnostic{
        file.path, v.Tok(ci).line, "R7",
        "direct use of concrete entropy coder " + t +
            " in library code; go through EntropyEncoder/EntropyDecoder "
            "(src/entropy/entropy_coder.h) so the container version byte "
            "keeps selecting the backend (docs/ENTROPY.md)"});
  }
}

// ---------------------------------------------------------------------------
// Concurrency rules R8-R12 (docs/CONCURRENCY.md). ParseClasses records each
// class's annotation contract into a ClassInfo (pass 1 merges them into the
// SymbolTable); pass 2 then checks member annotation coverage (R8), lock
// discipline at guarded accesses (R9), blocking calls under a held lock
// (R10), mutable global state (R11), and raw thread primitives (R12).

bool IsMutexType(const std::string& t) {
  return t == "Mutex" || t == "mutex" || t == "shared_mutex" ||
         t == "timed_mutex" || t == "recursive_mutex";
}

bool IsCondVarType(const std::string& t) {
  return t == "CondVar" || t == "condition_variable" ||
         t == "condition_variable_any";
}

// Advances past a balanced [...] starting at `ci` (which must be "[").
size_t SkipBrackets(const CodeView& v, size_t ci) {
  int depth = 0;
  for (; ci < v.size(); ++ci) {
    const std::string& t = v.Tok(ci).text;
    if (t == "[") ++depth;
    if (t == "]" && --depth == 0) return ci + 1;
  }
  return v.size();
}

// Identifiers inside the balanced (...) at `open`, in order.
std::vector<std::string> IdentsInParens(const CodeView& v, size_t open) {
  std::vector<std::string> idents;
  const size_t close = SkipParens(v, open);
  for (size_t k = open + 1; k + 1 < close; ++k) {
    if (v.IsIdent(k)) idents.push_back(v.Tok(k).text);
  }
  return idents;
}

// Parses one member declaration of a class body beginning at `s`. `end` is
// the code index of the class's closing brace. Records what it learns into
// `info` and returns the index just past the declaration.
size_t ParseMember(const CodeView& v, size_t s, size_t end, ClassInfo* info) {
  if (v.IsIdent(s)) {
    const std::string& first = v.Tok(s).text;
    if ((first == "public" || first == "private" || first == "protected") &&
        v.Is(s + 1, ":")) {
      return s + 2;
    }
    if (first == "using" || first == "typedef" || first == "friend" ||
        first == "static_assert") {
      size_t k = s;
      while (k < end && !v.Is(k, ";")) ++k;
      return k + 1;
    }
    if (first == "template") {
      return v.Is(s + 1, "<") ? SkipAngles(v, s + 1) : s + 1;
    }
    if (first == "class" || first == "struct" || first == "union" ||
        first == "enum") {
      // Nested type: the top-level class scan parses its body separately;
      // here it (or a forward declaration) is skipped whole.
      size_t k = s + 1;
      while (k < end && !v.Is(k, "{") && !v.Is(k, ";")) ++k;
      if (v.Is(k, "{")) k = FindMatchingBrace(v, k);
      while (k < end && !v.Is(k, ";")) ++k;
      return k + 1;
    }
  }

  bool is_const = false, is_mutex = false, is_cv = false, is_atomic = false;
  bool is_confined = false, is_fn = false, no_analysis = false;
  std::string name, fn_name, guarded_mutex, pt_guarded_mutex;
  std::vector<std::string> extra_names;
  std::set<std::string> required;
  int name_line = v.Tok(s).line;
  size_t k = s;
  while (k < end) {
    const Token& t = v.Tok(k);
    const std::string& txt = t.text;
    if (t.kind == TokenKind::kIdent) {
      if (txt == "const" || txt == "constexpr" || txt == "constinit") {
        is_const = true;
      } else if (IsMutexType(txt)) {
        is_mutex = true;
      } else if (IsCondVarType(txt)) {
        is_cv = true;
      } else if (txt == "atomic" || txt == "atomic_flag") {
        is_atomic = true;
      } else if (txt == "DBGC_THREAD_CONFINED") {
        is_confined = true;
      } else if (txt == "DBGC_NO_THREAD_SAFETY_ANALYSIS") {
        no_analysis = true;
      } else if (txt == "operator") {
        // Operators are always functions; skip ahead to the parameter list.
        is_fn = true;
        if (fn_name.empty()) fn_name = "operator";
        while (k < end && !v.Is(k, "(")) ++k;
        continue;
      } else if (txt.rfind("DBGC_", 0) == 0 && v.Is(k + 1, "(")) {
        const std::vector<std::string> args = IdentsInParens(v, k + 1);
        if (txt == "DBGC_GUARDED_BY" && !args.empty()) {
          guarded_mutex = args.back();
        } else if (txt == "DBGC_PT_GUARDED_BY" && !args.empty()) {
          pt_guarded_mutex = args.back();
        } else if (txt == "DBGC_REQUIRES") {
          required.insert(args.begin(), args.end());
        }
        k = SkipParens(v, k + 1);
        continue;
      } else if (txt != "static" && txt != "inline" && txt != "mutable" &&
                 txt != "explicit" && txt != "virtual" && txt != "volatile" &&
                 txt != "typename" && txt != "final" && txt != "override" &&
                 txt != "noexcept" && txt != "default" && txt != "delete") {
        if (!is_fn) {
          name = txt;
          name_line = t.line;
        }
      }
      ++k;
      continue;
    }
    if (txt == "<") { k = SkipAngles(v, k); continue; }
    if (txt == "[") { k = SkipBrackets(v, k); continue; }
    if (txt == "(") {
      // At class scope a parenthesis means a function declaration:
      // in-class member initializers can only use "=" or braces.
      is_fn = true;
      if (fn_name.empty()) fn_name = name;
      k = SkipParens(v, k);
      continue;
    }
    if (txt == "{") {
      if (is_fn) {  // Inline body ends the declaration.
        k = FindMatchingBrace(v, k);
        if (v.Is(k, ";")) ++k;
        break;
      }
      k = FindMatchingBrace(v, k);  // Brace initializer.
      continue;
    }
    if (txt == "=") {
      int depth = 0;
      ++k;
      while (k < end) {
        const std::string& u = v.Tok(k).text;
        if (u == "(" || u == "{" || u == "[") ++depth;
        else if (u == ")" || u == "}" || u == "]") --depth;
        else if (u == ";" && depth == 0) break;
        else if (u == "," && depth == 0 && !is_fn) break;
        ++k;
      }
      continue;
    }
    if (txt == ";") { ++k; break; }
    if (txt == ",") {
      if (!is_fn && !name.empty()) {
        extra_names.push_back(name);
        name.clear();
      }
      ++k;
      continue;
    }
    ++k;  // ~ & * :: : ... and other declarator punctuation.
  }

  if (is_fn) {
    if (!fn_name.empty()) {
      if (no_analysis) info->method_no_analysis.insert(fn_name);
      if (!required.empty()) {
        info->method_requires[fn_name].insert(required.begin(),
                                              required.end());
      }
    }
  } else {
    if (!name.empty()) extra_names.push_back(name);
    for (const std::string& member : extra_names) {
      info->members.insert(member);
      info->member_lines.emplace(member, name_line);
      if (is_mutex) info->mutexes.insert(member);
      if (is_cv) info->condvars.insert(member);
      if (is_atomic) info->atomics.insert(member);
      if (is_const) info->consts.insert(member);
      if (is_confined) info->confined.insert(member);
      if (!guarded_mutex.empty()) info->guarded[member] = guarded_mutex;
      if (!pt_guarded_mutex.empty()) {
        info->pt_guarded[member] = pt_guarded_mutex;
      }
    }
  }
  return std::max(k, s + 1);
}

struct ParsedClass {
  ClassInfo info;
  size_t body_begin = 0;  // Code index of "{".
  size_t body_end = 0;    // Just past the matching "}".
};

void ParseClassBody(const CodeView& v, size_t open, size_t end_past,
                    ClassInfo* info) {
  const size_t end = end_past == 0 ? 0 : end_past - 1;  // The "}" itself.
  size_t k = open + 1;
  while (k < end) {
    const size_t next = ParseMember(v, k, end, info);
    k = next > k ? next : k + 1;
  }
}

// Every class/struct definition in the file, including nested ones (the
// scan visits all tokens, so an inner class shows up as its own entry).
std::vector<ParsedClass> ParseClasses(const CodeView& v) {
  std::vector<ParsedClass> out;
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!v.IsIdent(ci)) continue;
    const std::string& kw = v.Tok(ci).text;
    if (kw != "class" && kw != "struct") continue;
    if (ci > 0 && v.Tok(ci - 1).kind == TokenKind::kIdent &&
        v.Tok(ci - 1).text == "enum") {
      continue;
    }
    size_t k = ci + 1;
    // Capability attributes between the keyword and the name.
    while (v.IsIdent(k) && v.Tok(k).text.rfind("DBGC_", 0) == 0) {
      k = v.Is(k + 1, "(") ? SkipParens(v, k + 1) : k + 1;
    }
    // Qualified name: the definition names the last :: component.
    std::string name;
    while (v.IsIdent(k)) {
      name = v.Tok(k).text;
      if (v.Is(k + 1, "::")) {
        k += 2;
      } else {
        ++k;
        break;
      }
    }
    if (name.empty()) continue;
    if (v.Is(k, "final")) ++k;
    if (v.Is(k, ":")) {  // Base clause: scan forward to the body brace.
      while (k < v.size() && !v.Is(k, "{") && !v.Is(k, ";")) {
        k = v.Is(k, "<") ? SkipAngles(v, k) : k + 1;
      }
    }
    if (!v.Is(k, "{")) continue;  // Forward declaration or variable.
    ParsedClass pc;
    pc.info.name = name;
    pc.body_begin = k;
    pc.body_end = FindMatchingBrace(v, k);
    ParseClassBody(v, pc.body_begin, pc.body_end, &pc.info);
    out.push_back(std::move(pc));
  }
  return out;
}

// R8: every mutable member of a mutex-owning class carries an annotation.

void CheckR8(const SourceFile& file, const std::vector<ParsedClass>& classes,
             std::vector<Diagnostic>* diags) {
  for (const ParsedClass& pc : classes) {
    const ClassInfo& c = pc.info;
    if (c.mutexes.empty()) continue;
    for (const std::string& m : c.members) {
      if (c.mutexes.count(m) || c.condvars.count(m) || c.atomics.count(m) ||
          c.consts.count(m) || c.confined.count(m) || c.guarded.count(m) ||
          c.pt_guarded.count(m)) {
        continue;
      }
      const auto line = c.member_lines.find(m);
      diags->push_back(Diagnostic{
          file.path, line == c.member_lines.end() ? 1 : line->second, "R8",
          "class '" + c.name + "' owns a mutex but member '" + m +
              "' is neither const/atomic nor annotated DBGC_GUARDED_BY/"
              "DBGC_PT_GUARDED_BY/DBGC_THREAD_CONFINED "
              "(common/thread_annotations.h)"});
    }
  }
}

// R9/R10: lock discipline inside method bodies.

bool IsBlockingCall(const std::string& name) {
  static const char* kBlocking[] = {
      "ParallelFor", "Schedule",  "Submit",      "TrySubmit", "Drain",
      "NextResult",  "Compress",  "Decompress",  "CompressImpl",
      "DecompressImpl", "HandleFrame", "Put",    "join",      "detach",
      "sleep_for",   "sleep_until", "fopen",     "fread",     "fwrite",
      "fclose",      "opendir",   "readdir",     "closedir"};
  for (const char* b : kBlocking) {
    if (name == b) return true;
  }
  return false;
}

bool IsWaitCall(const std::string& name) {
  return name == "Wait" || name == "wait" || name == "wait_for" ||
         name == "wait_until";
}

// Resolves the class a function definition belongs to via its qualified
// name (`Class::Method(...) {`). Returns "" for free functions, in-class
// definitions (resolved by body position instead), and constructors with
// initializer lists (exempt anyway).
std::string OutOfLineOwner(const CodeView& v, const FunctionSpan& fn) {
  size_t k = fn.body_begin;
  int steps = 0;
  while (k > 0 && ++steps < 64) {
    --k;
    const Token& t = v.Tok(k);
    if (t.kind == TokenKind::kIdent) continue;  // const / noexcept / override.
    if (t.text != ")") return "";  // Init list or not a definition header.
    int depth = 0;
    size_t j = k;
    while (j > 0) {
      const std::string& u = v.Tok(j).text;
      if (u == ")") ++depth;
      if (u == "(" && --depth == 0) break;
      --j;
    }
    if (j < 2 || !v.IsIdent(j - 1)) return "";
    const std::string& before = v.Tok(j - 1).text;
    if (before.rfind("DBGC_", 0) == 0 || before == "noexcept") {
      k = j - 1;  // Trailing annotation group; keep walking left.
      continue;
    }
    size_t prev = j - 2;  // Token before the function name.
    if (v.Tok(prev).text == "~") {
      if (prev == 0) return "";
      --prev;
    }
    if (v.Tok(prev).text == "::" && prev >= 1 && v.IsIdent(prev - 1)) {
      return v.Tok(prev - 1).text;
    }
    return "";
  }
  return "";
}

struct HeldGuard {
  std::string var;  // The RAII object's name.
  std::string mu;   // The mutex expression's final identifier.
  int depth;        // Brace depth of the declaration (popped on scope exit).
  bool held;        // false between var.unlock() and var.lock().
};

void CheckMethodBody(const SourceFile& file, const CodeView& v,
                     const FunctionSpan& fn, const ClassInfo* cls,
                     bool check_r9, std::vector<Diagnostic>* diags) {
  std::set<std::string> required;
  if (cls != nullptr) {
    const auto it = cls->method_requires.find(fn.name);
    if (it != cls->method_requires.end()) required = it->second;
  }
  std::vector<HeldGuard> guards;
  int depth = 0;
  const auto holds = [&](const std::string& mu) {
    if (required.count(mu)) return true;
    for (const HeldGuard& g : guards) {
      if (g.held && g.mu == mu) return true;
    }
    return false;
  };
  const auto any_held = [&] {
    if (!required.empty()) return true;
    for (const HeldGuard& g : guards) {
      if (g.held) return true;
    }
    return false;
  };
  for (size_t ci = fn.body_begin; ci < fn.body_end; ++ci) {
    const Token& t = v.Tok(ci);
    const std::string& txt = t.text;
    if (t.kind == TokenKind::kPunct) {
      if (txt == "{") {
        ++depth;
      } else if (txt == "}") {
        --depth;
        while (!guards.empty() && guards.back().depth > depth) {
          guards.pop_back();
        }
      }
      continue;
    }
    if (t.kind != TokenKind::kIdent) continue;
    // RAII guard declarations (ours and the std adapters).
    if (txt == "MutexLock" || txt == "ReleasableMutexLock" ||
        txt == "lock_guard" || txt == "unique_lock" || txt == "scoped_lock") {
      size_t k = ci + 1;
      if (v.Is(k, "<")) k = SkipAngles(v, k);
      if (v.IsIdent(k) && v.Is(k + 1, "(")) {
        const std::vector<std::string> args = IdentsInParens(v, k + 1);
        if (!args.empty()) {
          guards.push_back(HeldGuard{v.Tok(k).text, args.back(), depth, true});
          ci = SkipParens(v, k + 1) - 1;
          continue;
        }
      }
    }
    // var.lock() / var.unlock() on a tracked guard.
    if ((txt == "lock" || txt == "unlock") && ci >= 2 && v.Is(ci - 1, ".") &&
        v.IsIdent(ci - 2) && v.Is(ci + 1, "(")) {
      for (HeldGuard& g : guards) {
        if (g.var == v.Tok(ci - 2).text) g.held = (txt == "lock");
      }
      continue;
    }
    // R10: blocking calls while any lock is held.
    if (v.Is(ci + 1, "(") && any_held()) {
      if (IsWaitCall(txt)) {
        const std::vector<std::string> args = IdentsInParens(v, ci + 1);
        bool on_held_guard = false;
        for (const HeldGuard& g : guards) {
          if (g.held && !args.empty() && g.var == args.front()) {
            on_held_guard = true;
          }
        }
        if (!on_held_guard) {
          diags->push_back(Diagnostic{
              file.path, t.line, "R10",
              "condition wait in '" + fn.name +
                  "' does not wait on the held scoped lock; waiting while "
                  "holding an unrelated mutex deadlocks "
                  "(docs/CONCURRENCY.md rule R10)"});
        }
      } else if (IsBlockingCall(txt)) {
        diags->push_back(Diagnostic{
            file.path, t.line, "R10",
            "blocking call '" + txt + "' in '" + fn.name +
                "' while a lock is held; release the lock first "
                "(docs/CONCURRENCY.md rule R10)"});
      }
    }
    // R9: unqualified access to a guarded member.
    if (check_r9 && cls != nullptr) {
      const auto git = cls->guarded.find(txt);
      if (git != cls->guarded.end()) {
        const std::string& prev = ci > 0 ? v.Tok(ci - 1).text : "";
        if (prev != "." && prev != "->" && prev != "::" &&
            !holds(git->second)) {
          diags->push_back(Diagnostic{
              file.path, t.line, "R9",
              "member '" + txt + "' is guarded by '" + git->second +
                  "' but '" + fn.name +
                  "' accesses it without holding the lock; take a MutexLock "
                  "or annotate the method DBGC_REQUIRES(" + git->second +
                  ") (docs/CONCURRENCY.md rule R9)"});
        }
      }
    }
  }
}

void CheckR9R10(const SourceFile& file, const CodeView& v,
                const SymbolTable& table,
                const std::vector<ParsedClass>& classes,
                std::vector<Diagnostic>* diags) {
  for (const FunctionSpan& fn : SegmentFunctions(v)) {
    std::string owner = OutOfLineOwner(v, fn);
    if (owner.empty()) {
      for (const ParsedClass& pc : classes) {
        if (fn.body_begin > pc.body_begin && fn.body_begin < pc.body_end) {
          owner = pc.info.name;  // The last hit is the innermost class.
        }
      }
    }
    const ClassInfo* cls = nullptr;
    if (!owner.empty()) {
      const auto it = table.classes.find(owner);
      if (it != table.classes.end()) cls = &it->second;
    }
    if (cls != nullptr && cls->method_no_analysis.count(fn.name)) continue;
    // Constructors and destructors are exempt from R9: no second thread
    // can hold a reference while the object is being built or torn down.
    const bool check_r9 = cls != nullptr && fn.name != cls->name;
    CheckMethodBody(file, v, fn, cls, check_r9, diags);
  }
}

// R11: mutable static / namespace-scope state.

enum class DeclClass { kSkip, kOk, kMutable };

DeclClass ClassifyDecl(const CodeView& v, size_t ci, std::string* name) {
  if (!v.IsIdent(ci)) return DeclClass::kSkip;
  const std::string& first = v.Tok(ci).text;
  if (IsControlKeyword(first) || first == "using" || first == "typedef" ||
      first == "friend" || first == "namespace" || first == "extern" ||
      first == "template" || first == "class" || first == "struct" ||
      first == "union" || first == "enum" || first == "public" ||
      first == "private" || first == "protected" || first == "try" ||
      first == "break" || first == "continue" || first == "goto") {
    return DeclClass::kSkip;
  }
  bool saw_const = false;
  bool saw_sync = false;
  std::string last_ident;
  const size_t limit = std::min(v.size(), ci + 96);
  for (size_t k = ci; k < limit; ++k) {
    const Token& t = v.Tok(k);
    const std::string& txt = t.text;
    if (t.kind == TokenKind::kPreproc) return DeclClass::kSkip;
    if (t.kind == TokenKind::kIdent) {
      if (txt == "const" || txt == "constexpr" || txt == "constinit") {
        saw_const = true;
      } else if (IsMutexType(txt) || IsCondVarType(txt) ||
                 txt == "once_flag") {
        saw_sync = true;
      } else if (txt == "operator" || txt == "using" || txt == "class" ||
                 txt == "struct" || txt == "enum" || txt == "union") {
        return DeclClass::kSkip;
      } else if (txt != "static" && txt != "thread_local" &&
                 txt != "inline" && txt != "mutable" && txt != "auto" &&
                 txt != "volatile") {
        last_ident = txt;
      }
      continue;
    }
    if (txt == "<") { k = SkipAngles(v, k) - 1; continue; }
    if (txt == "[") { k = SkipBrackets(v, k) - 1; continue; }
    if (txt == "(") return DeclClass::kSkip;  // Function or macro call.
    if (txt == "=" || txt == "{" || txt == ";") {
      if (saw_sync || saw_const) return DeclClass::kOk;
      *name = last_ident;
      return last_ident.empty() ? DeclClass::kSkip : DeclClass::kMutable;
    }
    // * & :: , : keep scanning the declarator.
  }
  return DeclClass::kSkip;
}

void CheckR11(const SourceFile& file, const CodeView& v,
              std::vector<Diagnostic>* diags) {
  if (file.rel_path.rfind("obs/", 0) == 0) return;  // Registry internals.
  const auto flag = [&](size_t ci, const std::string& name,
                        const char* where) {
    diags->push_back(Diagnostic{
        file.path, v.Tok(ci).line, "R11",
        std::string("mutable ") + where + " state '" + name +
            "' in library code; keep shared state inside a mutex-owning "
            "class or the obs registry (docs/CONCURRENCY.md rule R11)"});
  };
  // Static and thread_local declarations anywhere (function-local statics,
  // class statics, namespace-scope statics).
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!v.IsIdent(ci)) continue;
    const std::string& txt = v.Tok(ci).text;
    if (txt != "static" && txt != "thread_local") continue;
    std::string name;
    if (ClassifyDecl(v, ci, &name) == DeclClass::kMutable) {
      flag(ci, name, "static");
    }
  }
  // Namespace-scope declarations without the static keyword. Braces are
  // classified as namespace-braces or other; a statement is at namespace
  // scope when every enclosing brace is a namespace.
  std::vector<bool> ns_stack;
  bool all_ns = true;
  for (size_t ci = 0; ci < v.size(); ++ci) {
    const Token& t = v.Tok(ci);
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "{") {
        bool ns = false;
        if (ci >= 1 && v.Is(ci - 1, "namespace")) ns = true;
        if (ci >= 2 && v.IsIdent(ci - 1) && v.Is(ci - 2, "namespace")) {
          ns = true;
        }
        ns_stack.push_back(ns);
      } else if (t.text == "}" && !ns_stack.empty()) {
        ns_stack.pop_back();
      }
      all_ns = true;
      for (const bool ns : ns_stack) all_ns = all_ns && ns;
      continue;
    }
    if (!all_ns || !v.IsIdent(ci)) continue;
    const bool at_start =
        ci == 0 || v.Tok(ci - 1).kind == TokenKind::kPreproc ||
        (v.Tok(ci - 1).kind == TokenKind::kPunct &&
         (v.Tok(ci - 1).text == ";" || v.Tok(ci - 1).text == "{" ||
          v.Tok(ci - 1).text == "}"));
    if (!at_start) continue;
    const std::string& txt = t.text;
    if (txt == "static" || txt == "thread_local") continue;  // Handled above.
    std::string name;
    if (ClassifyDecl(v, ci, &name) == DeclClass::kMutable) {
      flag(ci, name, "namespace-scope");
    }
  }
}

// R12: raw thread primitives outside the pool implementation.

void CheckR12(const SourceFile& file, const CodeView& v,
              std::vector<Diagnostic>* diags) {
  if (file.rel_path == "common/thread_pool.h" ||
      file.rel_path == "common/thread_pool.cc") {
    return;  // The one sanctioned implementation.
  }
  for (size_t ci = 0; ci < v.size(); ++ci) {
    if (!v.IsIdent(ci)) continue;
    const std::string& t = v.Tok(ci).text;
    const bool std_qualified =
        ci >= 2 && v.Is(ci - 1, "::") && v.Tok(ci - 2).text == "std";
    if ((t == "thread" || t == "jthread") && std_qualified &&
        !v.Is(ci + 1, "::")) {
      // std::thread::hardware_concurrency and friends stay legal: the
      // trailing :: marks a static query, not a thread being created.
      diags->push_back(Diagnostic{
          file.path, v.Tok(ci).line, "R12",
          "raw std::" + t + " outside the thread pool; run work on a "
              "dbgc::ThreadPool (common/thread_pool.h, docs/PARALLELISM.md)"});
    }
    if (t == "async" && std_qualified) {
      diags->push_back(Diagnostic{
          file.path, v.Tok(ci).line, "R12",
          "std::async outside the thread pool; run work on a "
          "dbgc::ThreadPool (common/thread_pool.h, docs/PARALLELISM.md)"});
    }
    if (t == "detach" && v.Is(ci + 1, "(") && ci >= 1 &&
        (v.Is(ci - 1, ".") || v.Is(ci - 1, "->"))) {
      diags->push_back(Diagnostic{
          file.path, v.Tok(ci).line, "R12",
          "detached thread; pool workers are joined in ~ThreadPool so "
          "shutdown stays deterministic (docs/PARALLELISM.md)"});
    }
    // The C API is the same back door: session/server code must not spawn
    // threads the pool cannot account for.
    if ((t == "pthread_create" || t == "pthread_detach") &&
        v.Is(ci + 1, "(")) {
      diags->push_back(Diagnostic{
          file.path, v.Tok(ci).line, "R12",
          t + " outside the thread pool; run work on a dbgc::ThreadPool "
              "(common/thread_pool.h, docs/PARALLELISM.md)"});
    }
  }
}

// R13: node-based standard containers in hot-path function bodies. The
// encode hot path (src/core/, src/cluster/) runs over flat sorted arrays
// (docs/PERFORMANCE.md): a per-element heap node costs an allocation on
// insert and a cache miss on every probe, and each node container that has
// crept into the pipeline eventually surfaced in a profile. Function-local
// declarations are flagged; use a sorted std::vector (sort + merge-join /
// binary search) or cluster/flat_map.h instead. Long-lived member state
// and code outside the hot-path directories are unaffected.

void CheckR13(const SourceFile& file, const CodeView& v,
              std::vector<Diagnostic>* diags) {
  const bool hot_path = file.kind == FileKind::kFixture ||
                        file.rel_path.rfind("core/", 0) == 0 ||
                        file.rel_path.rfind("cluster/", 0) == 0;
  if (!hot_path) return;
  for (const FunctionSpan& fn : SegmentFunctions(v)) {
    for (size_t ci = fn.body_begin; ci < fn.body_end; ++ci) {
      if (!v.IsIdent(ci)) continue;
      const std::string& t = v.Tok(ci).text;
      if (t != "map" && t != "set" && t != "unordered_map" &&
          t != "unordered_set" && t != "multimap" && t != "multiset") {
        continue;
      }
      if (!(ci >= 2 && v.Is(ci - 1, "::") && v.Tok(ci - 2).text == "std")) {
        continue;
      }
      // Only a template-argument list marks a declaration; bare mentions
      // (e.g. a qualified nested name in a cast) are someone else's type.
      if (!v.Is(ci + 1, "<")) continue;
      diags->push_back(Diagnostic{
          file.path, v.Tok(ci).line, "R13",
          "node-based std::" + t + " in hot-path function '" + fn.name +
              "'; keep per-frame state in flat sorted vectors or "
              "cluster/flat_map.h (docs/PERFORMANCE.md rule R13)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions. A comment naming DBGC_LINT_ALLOW with a parenthesized rule
// and a mandatory reason disables that rule on its own line (trailing
// comment) or on the next code line (standalone comment). A prose mention
// of the macro name without an immediately following parenthesis is not a
// suppression attempt.

struct Suppressions {
  // line -> rules allowed on that line (and on the following line when the
  // comment stands alone).
  std::map<int, std::set<std::string>> by_line;
  std::vector<Diagnostic> malformed;
};

Suppressions CollectSuppressions(const SourceFile& file) {
  Suppressions sup;
  // Lines that contain code, to decide whether an ALLOW comment stands
  // alone (applies to the next line) or trails code (applies to its own).
  std::set<int> code_lines;
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::kComment) code_lines.insert(t.line);
  }
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::kComment) continue;
    size_t pos = 0;
    const std::string kMarker = "DBGC_LINT_ALLOW";
    while ((pos = t.text.find(kMarker, pos)) != std::string::npos) {
      const size_t open = pos + kMarker.size();
      if (open >= t.text.size() || t.text[open] != '(') {
        pos = open;  // Prose mention, not a suppression attempt.
        continue;
      }
      const size_t close = t.text.find(')', open);
      bool ok = close != std::string::npos;
      std::string rule;
      if (ok) {
        rule = t.text.substr(open + 1, close - open - 1);
        ok = rule.size() >= 2 && rule.size() <= 3 && rule[0] == 'R';
        int num = 0;
        for (size_t d = 1; ok && d < rule.size(); ++d) {
          ok = std::isdigit(static_cast<unsigned char>(rule[d])) != 0;
          num = num * 10 + (rule[d] - '0');
        }
        ok = ok && num >= 1 && num <= 13;
      }
      if (ok) {
        // A reason after "):" is mandatory.
        size_t colon = t.text.find(':', close);
        ok = colon != std::string::npos &&
             t.text.find_first_not_of(" \t", colon + 1) != std::string::npos;
      }
      if (!ok) {
        sup.malformed.push_back(Diagnostic{
            file.path, t.line, "lint",
            "malformed suppression; use // DBGC_LINT_ALLOW(Rn): reason"});
      } else if (code_lines.count(t.line)) {
        sup.by_line[t.line].insert(rule);
      } else {
        // Standalone comment (possibly the first line of a multi-line
        // comment): applies to the next line that holds code.
        const auto next = code_lines.upper_bound(t.line);
        if (next != code_lines.end()) sup.by_line[*next].insert(rule);
      }
      pos = close == std::string::npos ? t.text.size() : close;
    }
  }
  return sup;
}

// Merges one class's parsed contract into the table. Contracts are
// collected across files so a DBGC_REQUIRES on the header declaration
// covers the out-of-line definition in the .cc.
void MergeClassInfo(const ClassInfo& in, ClassInfo* out) {
  out->name = in.name;
  out->mutexes.insert(in.mutexes.begin(), in.mutexes.end());
  out->condvars.insert(in.condvars.begin(), in.condvars.end());
  out->atomics.insert(in.atomics.begin(), in.atomics.end());
  out->consts.insert(in.consts.begin(), in.consts.end());
  out->confined.insert(in.confined.begin(), in.confined.end());
  out->guarded.insert(in.guarded.begin(), in.guarded.end());
  out->pt_guarded.insert(in.pt_guarded.begin(), in.pt_guarded.end());
  out->members.insert(in.members.begin(), in.members.end());
  out->member_lines.insert(in.member_lines.begin(), in.member_lines.end());
  for (const auto& [fn, mus] : in.method_requires) {
    out->method_requires[fn].insert(mus.begin(), mus.end());
  }
  out->method_no_analysis.insert(in.method_no_analysis.begin(),
                                 in.method_no_analysis.end());
}

}  // namespace

SymbolTable BuildSymbolTable(const std::vector<SourceFile>& files) {
  SymbolTable table;
  std::set<std::string> void_fns;
  for (const SourceFile& f : files) {
    CollectFromFile(f, &table.status_fns, &void_fns);
    const CodeView v = MakeCodeView(f.tokens);
    for (const ParsedClass& pc : ParseClasses(v)) {
      MergeClassInfo(pc.info, &table.classes[pc.info.name]);
    }
  }
  // Drop ambiguous names (declared Status in one place, void in another):
  // flagging them by bare name would misfire on every void call site.
  for (const std::string& name : void_fns) table.status_fns.erase(name);
  return table;
}

std::vector<Diagnostic> AnalyzeFile(const SourceFile& file,
                                    const SymbolTable& table) {
  const CodeView v = MakeCodeView(file.tokens);
  std::vector<Diagnostic> diags;

  // Decoder-safety rules apply to library code and to the self-test
  // fixtures (which must be able to demonstrate every rule); hygiene and
  // concurrency rules R4/R5/R6/R12 run everywhere, with per-kind gates
  // inside each checker.
  const bool library_like =
      file.kind == FileKind::kLibrary || file.kind == FileKind::kFixture;
  if (library_like) {
    CheckR1(file, v, table.status_fns, &diags);
    for (const FunctionSpan& fn : SegmentFunctions(v)) {
      if (!IsDecodePath(fn.name)) continue;
      CheckR2Body(file, v, fn, &diags);
      CheckR3Body(file, v, fn, &diags);
    }
    CheckR7(file, v, &diags);
    const std::vector<ParsedClass> classes = ParseClasses(v);
    CheckR8(file, classes, &diags);
    CheckR9R10(file, v, table, classes, &diags);
    CheckR11(file, v, &diags);
    CheckR13(file, v, &diags);
  }
  CheckR4(file, v, &diags);
  CheckR5(file, v, &diags);
  CheckR6(file, v, &diags);
  if (file.kind != FileKind::kTest) CheckR12(file, v, &diags);

  const Suppressions sup = CollectSuppressions(file);
  std::vector<Diagnostic> kept;
  for (const Diagnostic& d : diags) {
    auto it = sup.by_line.find(d.line);
    if (it != sup.by_line.end() && it->second.count(d.rule)) continue;
    kept.push_back(d);
  }
  kept.insert(kept.end(), sup.malformed.begin(), sup.malformed.end());
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  return kept;
}

}  // namespace dbgc_lint
