// dbgc_lint rule engine.
//
// Six project-specific decoder-safety rules over the token stream produced
// by lexer.h (see docs/LINTING.md for the full specification and rationale):
//
//   R1  every call to a Status/Result-returning function is checked or
//       explicitly cast to void
//   R2  no allocation sized from decoded data in a decode path outside the
//       BoundedAlloc guard API (common/contracts.h)
//   R3  no raw * / + / << on untrusted (reader-tainted) size variables
//       outside CheckedMul/CheckedAdd/CheckedShl (common/safe_math.h)
//   R4  no assert() in library code (tests exempt); use DBGC_CHECK
//   R5  headers are self-contained: canonical include guards, and direct
//       includes for the std types they use
//   R6  no direct std::chrono::steady_clock::now() in library code outside
//       src/obs/; timing goes through obs::TraceSpan/ScopedTimer or
//       obs::MonotonicSeconds so latencies land in the metrics registry
//   R7  no direct use of a concrete entropy coder (ArithmeticEncoder/
//       ArithmeticDecoder/RangeEncoder/RangeDecoder) in library code
//       outside src/entropy/; streams go through the EntropyEncoder/
//       EntropyDecoder facade so the container version byte keeps
//       selecting the backend (docs/ENTROPY.md)
//
// Diagnostics are suppressed by a trailing or preceding comment of the form
//   // DBGC_LINT_ALLOW(R3): reason the code is safe
// A suppression without a reason is itself a diagnostic.

#ifndef DBGC_TOOLS_LINT_ANALYZER_H_
#define DBGC_TOOLS_LINT_ANALYZER_H_

#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace dbgc_lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;     // "R1".."R7", or "lint" for tool-level problems.
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
  bool operator==(const Diagnostic& o) const {
    return file == o.file && line == o.line && rule == o.rule &&
           message == o.message;
  }
};

struct SourceFile {
  std::string path;       // As given on the command line (diagnostics key).
  std::string rel_path;   // Path relative to the repo's src/ dir, if under it.
  bool is_header = false;
  bool is_test = false;   // Test / tool code: R4 exempt.
  std::vector<Token> tokens;
};

/// Pass 1: names of functions declared to return Status or Result<T>,
/// collected across every file so cross-file calls are recognized.
std::set<std::string> CollectStatusFunctions(
    const std::vector<SourceFile>& files);

/// Pass 2: runs all rules over one file. `status_fns` comes from pass 1.
/// Suppressions are already applied; malformed suppressions are reported.
std::vector<Diagnostic> AnalyzeFile(const SourceFile& file,
                                    const std::set<std::string>& status_fns);

}  // namespace dbgc_lint

#endif  // DBGC_TOOLS_LINT_ANALYZER_H_
