// dbgc_lint rule engine.
//
// Project-specific decoder-safety and concurrency-safety rules over the
// token stream produced by lexer.h (see docs/LINTING.md and
// docs/CONCURRENCY.md for the full specification and rationale):
//
//   R1  every call to a Status/Result-returning function is checked or
//       explicitly cast to void
//   R2  no allocation sized from decoded data in a decode path outside the
//       BoundedAlloc guard API (common/contracts.h)
//   R3  no raw * / + / << on untrusted (reader-tainted) size variables
//       outside CheckedMul/CheckedAdd/CheckedShl (common/safe_math.h)
//   R4  no assert() in library code (tests exempt); use DBGC_CHECK
//   R5  headers are self-contained: canonical include guards, and direct
//       includes for the std types they use
//   R6  no direct std::chrono::steady_clock::now() in library code outside
//       src/obs/; timing goes through obs::TraceSpan/ScopedTimer or
//       obs::MonotonicSeconds so latencies land in the metrics registry
//   R7  no direct use of a concrete entropy coder (ArithmeticEncoder/
//       ArithmeticDecoder/RangeEncoder/RangeDecoder) in library code
//       outside src/entropy/; streams go through the EntropyEncoder/
//       EntropyDecoder facade so the container version byte keeps
//       selecting the backend (docs/ENTROPY.md)
//   R8  a class that owns a mutex must annotate every mutable, non-const,
//       non-atomic data member with DBGC_GUARDED_BY / DBGC_PT_GUARDED_BY /
//       DBGC_THREAD_CONFINED (common/thread_annotations.h)
//   R9  a DBGC_GUARDED_BY member may only be touched inside a method that
//       either holds a scoped lock on the named mutex or is itself
//       annotated DBGC_REQUIRES on that mutex
//   R10 no blocking call (pool submission, Compress/Decompress, file I/O,
//       joins, sleeps, waits on an unrelated lock) while a lock is held
//   R11 no mutable namespace-scope or function-local static state in
//       library code outside src/obs/ registry internals; synchronization
//       primitives themselves are exempt
//   R12 no raw std::thread / std::async / detach outside the thread-pool
//       implementation; parallelism goes through common/thread_pool.h
//       (std::thread::hardware_concurrency and similar ::-qualified
//       constant queries stay legal)
//
// Diagnostics are suppressed by a trailing or preceding comment of the form
//   // DBGC_LINT_ALLOW(R3): reason the code is safe
// A suppression without a reason is itself a diagnostic.

#ifndef DBGC_TOOLS_LINT_ANALYZER_H_
#define DBGC_TOOLS_LINT_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace dbgc_lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;     // "R1".."R12", or "lint" for tool-level problems.
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
  bool operator==(const Diagnostic& o) const {
    return file == o.file && line == o.line && rule == o.rule &&
           message == o.message;
  }
};

/// What part of the tree a file belongs to; decides which rules apply.
///
///   kLibrary  src/               all rules
///   kTool     tools/             R4, R5, R6, R12 (hygiene + concurrency)
///   kBench    bench/             R4, R5, R6 (with timer allowlist), R12
///   kTest     tests/, examples/  R5 only
///   kFixture  */testdata/        all rules (the self-test corpus must be
///                                able to demonstrate each one)
enum class FileKind { kLibrary, kTool, kBench, kTest, kFixture };

struct SourceFile {
  std::string path;       // As given on the command line (diagnostics key).
  std::string rel_path;   // Path relative to the repo's src/ dir, if under it.
  bool is_header = false;
  FileKind kind = FileKind::kLibrary;
  std::vector<Token> tokens;
};

/// Everything pass 1 learned about one class: which members are
/// synchronization primitives, which are annotated how, and which methods
/// carry lock-contract annotations. Method annotations are collected
/// across files, so a DBGC_REQUIRES on a header declaration covers the
/// out-of-line definition in the .cc.
struct ClassInfo {
  std::string name;
  std::set<std::string> mutexes;    // Mutex / std::mutex members.
  std::set<std::string> condvars;   // CondVar / condition_variable members.
  std::set<std::string> atomics;    // std::atomic<...> members.
  std::set<std::string> consts;     // const / constexpr members.
  std::set<std::string> confined;   // DBGC_THREAD_CONFINED members.
  std::map<std::string, std::string> guarded;     // member -> mutex member.
  std::map<std::string, std::string> pt_guarded;  // member -> mutex member.
  std::set<std::string> members;                  // All data members.
  std::map<std::string, int> member_lines;        // member -> decl line.
  // method -> mutexes it requires the caller to hold (DBGC_REQUIRES).
  std::map<std::string, std::set<std::string>> method_requires;
  // Methods opted out of analysis (DBGC_NO_THREAD_SAFETY_ANALYSIS).
  std::set<std::string> method_no_analysis;
};

/// Pass 1 output: the cross-file symbol table the rules consult.
struct SymbolTable {
  /// Names of functions declared to return Status or Result<T>, collected
  /// across every file so cross-file calls are recognized (R1).
  std::set<std::string> status_fns;
  /// Class name -> annotation contract, for R8/R9/R10.
  std::map<std::string, ClassInfo> classes;
};

/// Pass 1: builds the symbol table over every file in the run.
SymbolTable BuildSymbolTable(const std::vector<SourceFile>& files);

/// Pass 2: runs all applicable rules over one file. Suppressions are
/// already applied; malformed suppressions are reported.
std::vector<Diagnostic> AnalyzeFile(const SourceFile& file,
                                    const SymbolTable& table);

}  // namespace dbgc_lint

#endif  // DBGC_TOOLS_LINT_ANALYZER_H_
