#include "lexer.h"

#include <cctype>

namespace dbgc_lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first within each leading character.
// Only operators the rules care to keep atomic need to be here; anything
// else falls back to single-character tokens.
const char* const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=",
};

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  std::vector<Token> tokens;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;

  auto push = [&](TokenKind kind, size_t begin, size_t end, int tok_line) {
    tokens.push_back(Token{kind, source.substr(begin, end - begin), tok_line});
  };
  auto count_lines = [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      if (source[k] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = source[i];

    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor directive: swallow the full logical line, including
    // backslash continuations, as one token. A trailing // comment is left
    // for the comment lexer so suppressions work on directive lines.
    if (c == '#') {
      const size_t begin = i;
      const int tok_line = line;
      while (i < n) {
        if (source[i] == '\n') {
          if (i > 0 && source[i - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;
        }
        if (source[i] == '/' && i + 1 < n && source[i + 1] == '/') break;
        ++i;
      }
      push(TokenKind::kPreproc, begin, i, tok_line);
      continue;
    }

    // Comments (retained: suppressions live in them).
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const size_t begin = i;
      while (i < n && source[i] != '\n') ++i;
      push(TokenKind::kComment, begin, i, line);
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const size_t begin = i;
      const int tok_line = line;
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) ++i;
      i = (i + 1 < n) ? i + 2 : n;
      count_lines(begin, i);
      push(TokenKind::kComment, begin, i, tok_line);
      continue;
    }

    // String / char literals (with escape handling; encoding prefixes like
    // u8"" lex as an identifier token followed by the literal, which is
    // harmless for these rules).
    if (c == '"' || c == '\'') {
      const size_t begin = i;
      const int tok_line = line;
      ++i;
      while (i < n && source[i] != c) {
        if (source[i] == '\\' && i + 1 < n) ++i;
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // Closing quote.
      push(c == '"' ? TokenKind::kString : TokenKind::kChar, begin, i,
           tok_line);
      continue;
    }

    if (IsIdentStart(c)) {
      const size_t begin = i;
      size_t j = i;
      while (j < n && IsIdentChar(source[j])) ++j;
      // Raw string literal: R"delim( ... )delim", with optional encoding
      // prefix. Lexed as ONE kString token (no escape processing), so rule
      // scans can never desync on quotes/parens in the raw body. A raw
      // string missing its closing delimiter swallows the rest of the file,
      // matching the unterminated-literal policy above.
      const std::string ident = source.substr(begin, j - begin);
      if (j < n && source[j] == '"' &&
          (ident == "R" || ident == "u8R" || ident == "uR" ||
           ident == "UR" || ident == "LR")) {
        size_t k = j + 1;
        std::string delim;
        while (k < n && delim.size() <= 16 && source[k] != '(' &&
               source[k] != ')' && source[k] != '\\' &&
               !std::isspace(static_cast<unsigned char>(source[k]))) {
          delim.push_back(source[k]);
          ++k;
        }
        if (k < n && source[k] == '(') {
          const int tok_line = line;
          const std::string closer = ")" + delim + "\"";
          const size_t close = source.find(closer, k + 1);
          const size_t stop =
              close == std::string::npos ? n : close + closer.size();
          count_lines(begin, stop);
          push(TokenKind::kString, begin, stop, tok_line);
          i = stop;
          continue;
        }
        // No '(' where the delimiter must end: not a raw string after all
        // (e.g. a macro named R followed by a normal string); fall through
        // and lex the identifier normally.
      }
      i = j;
      push(TokenKind::kIdent, begin, i, line);
      continue;
    }

    // Numbers, including hex, separators, suffixes, and simple decimals.
    // A leading '.' followed by a digit also starts a number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      const size_t begin = i;
      ++i;
      while (i < n) {
        const char d = source[i];
        if (IsIdentChar(d) || d == '.') {
          ++i;
        } else if (d == '\'' && i + 1 < n &&
                   std::isalnum(static_cast<unsigned char>(source[i + 1]))) {
          // Digit separator (1'000'000): the quote only joins the number
          // when another digit (or hex digit / suffix letter) follows, so
          // `0'c'` stays a number followed by a char literal.
          ++i;
        } else if ((d == '+' || d == '-') && i > begin &&
                   (source[i - 1] == 'e' || source[i - 1] == 'E' ||
                    source[i - 1] == 'p' || source[i - 1] == 'P')) {
          ++i;  // Exponent sign.
        } else {
          break;
        }
      }
      push(TokenKind::kNumber, begin, i, line);
      continue;
    }

    // Punctuation: longest match among the multi-character set.
    bool matched = false;
    for (const char* p : kPuncts) {
      const size_t len = std::char_traits<char>::length(p);
      if (source.compare(i, len, p) == 0) {
        push(TokenKind::kPunct, i, i + len, line);
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;

    push(TokenKind::kPunct, i, i + 1, line);
    ++i;
  }

  return tokens;
}

}  // namespace dbgc_lint
