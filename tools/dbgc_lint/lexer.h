// Minimal C++ lexer for dbgc_lint.
//
// Produces a flat token stream good enough for the project-specific safety
// rules in analyzer.h: identifiers, numbers, string/char literals,
// punctuation, comments (retained, for DBGC_LINT_ALLOW suppressions), and
// whole preprocessor directives (one token each, so macro bodies never leak
// into statement scanning). This is deliberately NOT a conforming
// preprocessor or parser — see docs/LINTING.md for the accepted trade-offs.

#ifndef DBGC_TOOLS_LINT_LEXER_H_
#define DBGC_TOOLS_LINT_LEXER_H_

#include <string>
#include <vector>

namespace dbgc_lint {

enum class TokenKind {
  kIdent,    // Identifiers and keywords.
  kNumber,   // Integer / floating literals (including separators, suffixes).
  kString,   // "..." including encoding prefixes.
  kChar,     // '...'
  kPunct,    // Operators and punctuation, longest-match (e.g. "<<=", "->").
  kComment,  // // or /* */, text includes the delimiters.
  kPreproc,  // A full logical preprocessor line, continuations folded in.
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based line of the token's first character.
};

/// Lexes `source`. Malformed input (unterminated literals or comments)
/// never fails: the remainder of the file becomes the final token.
std::vector<Token> Lex(const std::string& source);

}  // namespace dbgc_lint

#endif  // DBGC_TOOLS_LINT_LEXER_H_
