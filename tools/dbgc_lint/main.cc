// dbgc_lint: decoder-safety and concurrency-safety static analyzer for the
// dbgc tree.
//
//   dbgc_lint <file|dir>...            lint; exit 1 if any diagnostic
//   dbgc_lint --self-test <corpus-dir> check the seeded-violation corpus:
//                                      every // LINT-EXPECT: Rn annotation
//                                      must fire on its line, and nothing
//                                      unannotated may fire; exit 0 iff so
//   dbgc_lint --bench <json> <dir>...  lint repeatedly and write wall-time
//                                      stats to <json> (scripts/check.sh)
//
// Diagnostics: file:line: [rule] message. See docs/LINTING.md and
// docs/CONCURRENCY.md. Rule applicability depends on where a file lives
// (FileKind in analyzer.h): src/ gets all rules, tools/ and bench/ the
// hygiene and concurrency subset, tests only header hygiene, and testdata
// fixtures everything.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"
#include "lexer.h"

namespace dbgc_lint {
namespace {

namespace fs = std::filesystem;

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Path relative to the nearest "src/" component, for guard-name checks.
std::string RelToSrc(const std::string& path) {
  const std::string needle = "src/";
  size_t pos = path.rfind(needle);
  if (pos == std::string::npos) return "";
  if (pos != 0 && path[pos - 1] != '/') return "";
  return path.substr(pos + needle.size());
}

// True when the path contains `component` as a full directory name, either
// at the start ("bench/foo.cc") or after a slash (".../bench/foo.cc").
bool HasPathComponent(const std::string& path, const std::string& component) {
  if (path.rfind(component + "/", 0) == 0) return true;
  return path.find("/" + component + "/") != std::string::npos;
}

// Most-specific classification wins: a testdata fixture inside tools/ is
// still a fixture, a test under src/ is still a test.
FileKind ClassifyPath(const std::string& path) {
  if (path.find("testdata") != std::string::npos) return FileKind::kFixture;
  if (path.find("test") != std::string::npos ||
      HasPathComponent(path, "examples")) {
    return FileKind::kTest;
  }
  if (HasPathComponent(path, "bench")) return FileKind::kBench;
  if (HasPathComponent(path, "tools")) return FileKind::kTool;
  return FileKind::kLibrary;
}

bool LoadFile(const std::string& path, SourceFile* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out->path = path;
  out->rel_path = RelToSrc(path);
  out->is_header = HasSuffix(path, ".h");
  out->kind = ClassifyPath(path);
  out->tokens = Lex(ss.str());
  return true;
}

std::vector<std::string> GatherPaths(const std::vector<std::string>& args,
                                     std::string* error) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    // Fixture corpora are linted only when named explicitly (--self-test or
    // a direct testdata path), never swept up in a directory walk: they are
    // seeded with violations by design.
    const bool include_fixtures = arg.find("testdata") != std::string::npos;
    fs::path p(arg);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string sp = entry.path().string();
        if (!include_fixtures && sp.find("testdata") != std::string::npos) {
          continue;
        }
        if (HasSuffix(sp, ".h") || HasSuffix(sp, ".cc") ||
            HasSuffix(sp, ".cpp")) {
          files.push_back(sp);
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(arg);
    } else {
      *error = "dbgc_lint: cannot read '" + arg + "'";
      return {};
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Diagnostic> RunLint(const std::vector<SourceFile>& sources) {
  const SymbolTable table = BuildSymbolTable(sources);
  std::vector<Diagnostic> diags;
  for (const SourceFile& f : sources) {
    std::vector<Diagnostic> d = AnalyzeFile(f, table);
    diags.insert(diags.end(), d.begin(), d.end());
  }
  return diags;
}

// --self-test: compare diagnostics against // LINT-EXPECT: Rn annotations.
int RunSelfTest(const std::vector<SourceFile>& sources) {
  const std::vector<Diagnostic> diags = RunLint(sources);

  // Expected (file, line, rule) triples from annotations.
  std::map<std::string, std::map<int, std::set<std::string>>> expected;
  for (const SourceFile& f : sources) {
    for (const Token& t : f.tokens) {
      if (t.kind != TokenKind::kComment) continue;
      size_t pos = 0;
      while ((pos = t.text.find("LINT-EXPECT:", pos)) != std::string::npos) {
        pos += 12;
        std::istringstream rules(t.text.substr(pos));
        std::string rule;
        while (rules >> rule) {
          if ((rule.size() == 2 || rule.size() == 3) && rule[0] == 'R') {
            expected[f.path][t.line].insert(rule);
          } else {
            break;
          }
        }
      }
    }
  }

  int failures = 0;
  std::set<std::string> rules_fired;
  std::map<std::string, std::map<int, std::set<std::string>>> got;
  for (const Diagnostic& d : diags) {
    if (d.rule == "lint") continue;  // Malformed-suppression demo lines.
    got[d.file][d.line].insert(d.rule);
    rules_fired.insert(d.rule);
    if (!expected[d.file][d.line].count(d.rule)) {
      std::cerr << "UNEXPECTED: " << d.file << ":" << d.line << ": ["
                << d.rule << "] " << d.message << "\n";
      ++failures;
    }
  }
  for (const auto& [file, lines] : expected) {
    for (const auto& [line, rules] : lines) {
      for (const std::string& rule : rules) {
        if (!got[file][line].count(rule)) {
          std::cerr << "MISSED: " << file << ":" << line << ": expected ["
                    << rule << "] to fire\n";
          ++failures;
        }
      }
    }
  }
  // The corpus must exercise every rule, or the self-test proves nothing.
  for (const char* rule : {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8",
                           "R9", "R10", "R11", "R12", "R13"}) {
    if (!rules_fired.count(rule)) {
      std::cerr << "MISSED: corpus does not demonstrate rule " << rule
                << "\n";
      ++failures;
    }
  }

  if (failures > 0) {
    std::cerr << "dbgc_lint self-test: " << failures << " failure(s)\n";
    return 1;
  }
  std::cout << "dbgc_lint self-test: all " << diags.size()
            << " seeded violations caught, all rules demonstrated\n";
  return 0;
}

// --bench: lint the given tree repeatedly, report wall-time stats as JSON.
// Measures the full analysis (symbol table + all rules), not file I/O.
int RunBench(const std::string& json_path,
             const std::vector<SourceFile>& sources) {
  constexpr int kIters = 5;
  // DBGC_LINT_ALLOW(R6): benchmark driver timing the linter itself; tools
  // stay decoupled from the src/obs registry, so a raw clock is the tool.
  const auto now = [] { return std::chrono::steady_clock::now(); };
  size_t diag_count = 0;
  std::vector<double> millis;
  for (int it = 0; it < kIters; ++it) {
    const auto t0 = now();
    diag_count = RunLint(sources).size();
    const auto t1 = now();
    millis.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(millis.begin(), millis.end());
  double sum = 0;
  for (double m : millis) sum += m;
  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "dbgc_lint: cannot write '" << json_path << "'\n";
    return 2;
  }
  size_t tokens = 0;
  for (const SourceFile& f : sources) tokens += f.tokens.size();
  out << "{\n"
      << "  \"benchmark\": \"dbgc_lint\",\n"
      << "  \"files\": " << sources.size() << ",\n"
      << "  \"tokens\": " << tokens << ",\n"
      << "  \"diagnostics\": " << diag_count << ",\n"
      << "  \"iterations\": " << kIters << ",\n"
      << "  \"min_ms\": " << millis.front() << ",\n"
      << "  \"median_ms\": " << millis[millis.size() / 2] << ",\n"
      << "  \"mean_ms\": " << sum / static_cast<double>(millis.size()) << ",\n"
      << "  \"max_ms\": " << millis.back() << "\n"
      << "}\n";
  std::cout << "dbgc_lint bench: " << sources.size() << " file(s), median "
            << millis[millis.size() / 2] << " ms -> " << json_path << "\n";
  return 0;
}

int Main(int argc, char** argv) {
  bool self_test = false;
  std::string bench_json;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--bench" && i + 1 < argc) {
      bench_json = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: dbgc_lint [--self-test | --bench out.json] <file|dir>...\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr
        << "usage: dbgc_lint [--self-test | --bench out.json] <file|dir>...\n";
    return 2;
  }

  std::string error;
  const std::vector<std::string> files = GatherPaths(paths, &error);
  if (!error.empty()) {
    std::cerr << error << "\n";
    return 2;
  }

  std::vector<SourceFile> sources;
  for (const std::string& f : files) {
    SourceFile sf;
    if (!LoadFile(f, &sf)) {
      std::cerr << "dbgc_lint: cannot read '" << f << "'\n";
      return 2;
    }
    sources.push_back(std::move(sf));
  }

  if (self_test) return RunSelfTest(sources);
  if (!bench_json.empty()) return RunBench(bench_json, sources);

  const std::vector<Diagnostic> diags = RunLint(sources);
  for (const Diagnostic& d : diags) {
    std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
              << d.message << "\n";
  }
  if (!diags.empty()) {
    std::cout << diags.size() << " diagnostic(s) across " << sources.size()
              << " file(s)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dbgc_lint

int main(int argc, char** argv) { return dbgc_lint::Main(argc, argv); }
