// Seeded R5 violations: the guard #define does not match the #ifndef, and
// std::vector / uint64_t are used without their headers being included
// directly (this header is only self-contained by accident of its includer).

#ifndef DBGC_TESTDATA_BAD_HEADER_H_
#define DBGC_TESTDATA_WRONG_NAME_H_  // LINT-EXPECT: R5

namespace dbgc {

struct LeafIndex {
  std::vector<uint64_t> offsets;  // LINT-EXPECT: R5
  int depth = 0;
};

}  // namespace dbgc

#endif  // DBGC_TESTDATA_BAD_HEADER_H_
