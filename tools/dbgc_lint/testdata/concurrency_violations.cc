// Seeded concurrency violations for the dbgc_lint self-test (R8-R12).
// Every line marked LINT-EXPECT must produce exactly that diagnostic;
// unmarked lines must be clean. This file is never compiled — it only
// feeds the analyzer, so the DBGC_* annotation macros and the mutex types
// below are lint-visible stand-ins, not the real common/ headers.

namespace dbgc {

class Mutex {
 public:
  void lock();
  void unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

class ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu);
  void lock();
  void unlock();
};

class CondVar {
 public:
  void Wait(ReleasableMutexLock& lock);
  void NotifyAll();
};

// --- R8: mutex-owning class with an unannotated mutable member ------------

class BadStore {
 public:
  int capacity() const;

 private:
  Mutex mu_;
  int hits_;  // LINT-EXPECT: R8
  const int capacity_ = 8;       // const: clean.
};

// --- R9: guarded member touched without the lock --------------------------

class Pipeline {
 public:
  void Enqueue(int v) {
    MutexLock lock(mu_);
    queue_size_ = queue_size_ + v;       // Held via scoped lock: clean.
  }
  int Peek() {
    return queue_size_;  // LINT-EXPECT: R9
  }
  int PeekLocked() DBGC_REQUIRES(mu_) {
    return queue_size_;                  // Caller holds mu_: clean.
  }

 private:
  Mutex mu_;
  int queue_size_ DBGC_GUARDED_BY(mu_) = 0;
};

// --- R10: blocking calls while a lock is held -----------------------------

class Worker {
 public:
  void Flush() {
    MutexLock lock(mu_);
    Compress();  // LINT-EXPECT: R10
  }
  void WaitOnWrongLock(ReleasableMutexLock& other) {
    MutexLock lock(mu_);
    cv_.Wait(other);  // LINT-EXPECT: R10
  }
  void DrainProperly() {
    ReleasableMutexLock lock(mu_);
    while (pending_ != 0) cv_.Wait(lock);  // Waits on the held lock: clean.
  }
  void Compress();

 private:
  Mutex mu_;
  CondVar cv_;
  int pending_ DBGC_GUARDED_BY(mu_) = 0;
};

// --- R11: mutable static / namespace-scope state --------------------------

int frame_counter = 0;  // LINT-EXPECT: R11
const int kMaxFrames = 64;               // const: clean.

int NextId() {
  static int next_id = 0;  // LINT-EXPECT: R11
  return ++next_id;
}

// A raw string full of quotes, parens, and decoy code must lex as one
// token: the mutable declaration after it still fires, proving the scan
// did not desync inside the literal.
const char* kRawDoc = R"lint(decoy: MutexLock lock(mu_); " unbalanced ) )lint";
int after_raw_string = 1;  // LINT-EXPECT: R11

// Digit separators must stay part of the number token for the same reason.
int big_budget = 1'000'000;  // LINT-EXPECT: R11

// --- R12: raw thread primitives outside the pool --------------------------

void SpawnRaw() {
  std::thread worker([] {});  // LINT-EXPECT: R12
  worker.detach();  // LINT-EXPECT: R12
  auto pending = std::async([] {});  // LINT-EXPECT: R12
  (void)pending;
  const unsigned hw = std::thread::hardware_concurrency();  // Query: clean.
  (void)hw;
}

void SpawnRawViaPthreads(pthread_t* tid, void* (*fn)(void*)) {
  pthread_create(tid, nullptr, fn, nullptr);  // LINT-EXPECT: R12
  pthread_detach(*tid);  // LINT-EXPECT: R12
}

// --- Suppressions: an allowed concurrency violation must NOT fire ---------

class Registry {
 public:
  int Lookup();

 private:
  Mutex mu_;
  // DBGC_LINT_ALLOW(R8): intern table pointer is written once before any
  // worker thread exists; documented in the class comment.
  int* table_;
};

int SuppressedCounter() {
  // DBGC_LINT_ALLOW(R11): demo that suppressions silence concurrency rules.
  static int calls = 0;
  return ++calls;
}

}  // namespace dbgc
