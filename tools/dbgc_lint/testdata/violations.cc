// Seeded violations for the dbgc_lint self-test (R1-R4, R6, R7, R13). Every
// line
// marked
// LINT-EXPECT must produce exactly that diagnostic; unmarked lines must be
// clean. This file is never compiled — it only feeds the analyzer.

#include <cstdint>
#include <vector>

#include "bad_header.h"

namespace dbgc {

class Status {
 public:
  bool ok() const { return true; }
};

class ByteReader {
 public:
  Status ReadUint64(uint64_t* out);
  Status ReadByte(uint8_t* out);
  Status Skip(uint64_t n);
  uint64_t remaining() const { return 0; }
};

Status GetVarint64(ByteReader* reader, uint64_t* out);

// --- R1: ignored Status-returning calls -----------------------------------

void IgnoredStatusCalls(ByteReader* reader) {
  uint64_t count = 0;
  reader->ReadUint64(&count);  // LINT-EXPECT: R1
  GetVarint64(reader, &count);  // LINT-EXPECT: R1
  reader->Skip(4);  // LINT-EXPECT: R1
  (void)reader->Skip(4);                     // Explicitly voided: clean.
  Status st = reader->ReadUint64(&count);    // Assigned: clean.
  if (!st.ok()) return;
}

// --- R2: unguarded allocations in a decode path ---------------------------

Status DecodeUnguardedAllocs(ByteReader* reader) {
  uint64_t count = 0;
  Status st = reader->ReadUint64(&count);
  if (!st.ok()) return st;
  std::vector<uint8_t> payload;
  payload.reserve(count);  // LINT-EXPECT: R2
  payload.resize(count);  // LINT-EXPECT: R2
  std::vector<uint8_t> grid(count, 0);  // LINT-EXPECT: R2
  uint8_t* raw = new uint8_t[count];  // LINT-EXPECT: R2
  delete[] raw;
  payload.reserve(16);                       // Literal size: clean.
  std::vector<uint8_t> copy;
  copy.reserve(payload.size());              // Sized from memory: clean.
  return st;
}

// --- R3: raw arithmetic on untrusted sizes --------------------------------

Status DecodeRawSizeArithmetic(ByteReader* reader, uint64_t trusted) {
  uint64_t count = 0;
  Status st = reader->ReadUint64(&count);
  if (!st.ok()) return st;
  uint64_t bytes = count * 12;  // LINT-EXPECT: R3
  bytes = count + 8;  // LINT-EXPECT: R3
  bytes = count << 3;  // LINT-EXPECT: R3
  bytes += count;  // LINT-EXPECT: R3
  bytes = trusted * 12;                      // Untainted operand: clean.
  if (count > reader->remaining()) return st;  // Comparison: clean.
  return st;
}

// --- R4: assert in library code -------------------------------------------

inline void Narrow(uint64_t v) {
  assert(v < 256);  // LINT-EXPECT: R4
  static_assert(sizeof(v) == 8);             // static_assert: clean.
  (void)v;
}

// --- R6: ad-hoc monotonic clock reads -------------------------------------

double AdHocTiming() {
  const auto t0 = std::chrono::steady_clock::now();  // LINT-EXPECT: R6
  const auto t1 = std::chrono::steady_clock::now();  // LINT-EXPECT: R6
  return std::chrono::duration<double>(t1 - t0).count();
}

double ReviewedTimingException() {
  // The escape hatch for a deliberate, reviewed clock read:
  // DBGC_LINT_ALLOW(R6): demo of a sanctioned direct read.
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

// --- Suppressions: an allowed violation must NOT fire ---------------------

Status DecodeWithSuppression(ByteReader* reader) {
  uint64_t header_cells = 0;
  Status st = reader->ReadUint64(&header_cells);
  if (!st.ok()) return st;
  std::vector<uint8_t> cells;
  // Bounded two lines up by the protocol's 16-bit field width.
  // DBGC_LINT_ALLOW(R2): header_cells is at most 65535 by construction.
  cells.reserve(header_cells);  // DBGC_LINT_ALLOW(R3): bounded above.
  return st;
}

// A suppression without a reason is itself flagged.
// DBGC_LINT_ALLOW(R2)  LINT-EXPECT-NONE (malformed, reported as [lint])

// --- R7: concrete entropy coders bypass the version-byte dispatch ---------

void EncodeWithConcreteCoder() {
  ArithmeticEncoder enc;              // LINT-EXPECT: R7
  RangeEncoder renc;                  // LINT-EXPECT: R7
  (void)enc;
  (void)renc;
}

void DecodeWithConcreteCoder(const ByteBuffer& buf) {
  ArithmeticDecoder dec(buf);         // LINT-EXPECT: R7
  RangeDecoder rdec(buf);             // LINT-EXPECT: R7
  (void)dec;
  (void)rdec;
}

void ReviewedConcreteCoderException(const ByteBuffer& buf) {
  // DBGC_LINT_ALLOW(R7): demo of a reviewed single-backend call site.
  RangeDecoder rdec(buf);
  (void)rdec;
}

// --- R13: node-based containers in hot-path function bodies ---------------

void CountCellsWithNodeContainers() {
  std::map<uint64_t, uint32_t> per_cell;       // LINT-EXPECT: R13
  std::unordered_map<uint64_t, int> probes;    // LINT-EXPECT: R13
  std::set<uint64_t> seen;                     // LINT-EXPECT: R13
  (void)per_cell;
  (void)probes;
  (void)seen;
}

void ReviewedNodeContainerException() {
  // DBGC_LINT_ALLOW(R13): demo of a reviewed cold-path lookup table.
  std::map<uint64_t, uint32_t> cold_index;
  (void)cold_index;
}

}  // namespace dbgc
