// dbgc_stats: exercise the codec stack and dump the observability state.
//
//   dbgc_stats [--frames N] [--scene urban|city|road] [--json PATH]
//
// Generates N synthetic LiDAR frames, pushes each through the full DBGC
// client path (compress with stage spans) and the server path (decompress),
// prints a per-frame stage breakdown (DEN/OCT/COR/ORG/SPA/OUT/ENT/SER ms,
// from obs::FrameTrace), and finally dumps the process-wide
// MetricsRegistry::ToJson() snapshot to stdout or --json PATH.
//
// This is the dump mode of the observability layer: point it at a workload
// and read back every counter, gauge, and latency histogram the library
// exported (docs/OBSERVABILITY.md describes the schema).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dbgc_codec.h"
#include "lidar/scene_generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--frames N] [--scene urban|city|road] "
               "[--json PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int num_frames = 3;
  dbgc::SceneType scene = dbgc::SceneType::kUrban;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--frames" && i + 1 < argc) {
      num_frames = std::atoi(argv[++i]);
      if (num_frames < 1) return Usage(argv[0]);
    } else if (arg == "--scene" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "urban") {
        scene = dbgc::SceneType::kUrban;
      } else if (name == "city") {
        scene = dbgc::SceneType::kCity;
      } else if (name == "road") {
        scene = dbgc::SceneType::kRoad;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  if (!dbgc::obs::kEnabled) {
    std::fprintf(stderr,
                 "note: built with DBGC_OBS_OFF; all metrics read zero\n");
  }

  dbgc::DbgcOptions options;
  dbgc::DbgcCodec codec(options);
  dbgc::SceneGenerator generator(scene);

  std::printf("%-6s %9s %10s | per-stage ms\n", "frame", "points", "bytes");
  for (int f = 0; f < num_frames; ++f) {
    const dbgc::PointCloud pc =
        generator.Generate(static_cast<uint32_t>(f));

    dbgc::obs::FrameTrace trace;  // Collects this frame's stage split.
    dbgc::CompressParams cparams;
    cparams.q_xyz = options.q_xyz;
    const dbgc::Result<dbgc::ByteBuffer> compressed =
        codec.Compress(pc, cparams);
    if (!compressed.ok()) {
      std::fprintf(stderr, "frame %d: compress failed: %s\n", f,
                   compressed.status().ToString().c_str());
      return 1;
    }
    const dbgc::Result<dbgc::PointCloud> decoded =
        codec.Decompress(compressed.value());
    if (!decoded.ok()) {
      std::fprintf(stderr, "frame %d: decompress failed: %s\n", f,
                   decoded.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6d %9zu %10zu | %s\n", f, pc.size(),
                compressed.value().size(),
                trace.breakdown().ToJson().c_str());
  }

  const std::string snapshot =
      dbgc::obs::MetricsRegistry::Global().ToJson();
  if (json_path.empty()) {
    std::printf("\n%s\n", snapshot.c_str());
  } else {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(snapshot.data(), 1, snapshot.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
